// Package stegfs implements the paper's primary contribution: a
// steganographic file system offering plausible deniability to owners of
// protected files (Pang, Tan, Zhou — ICDE 2003).
//
// Hidden directories and files are excluded from the central directory. The
// metadata of a hidden object lives in an encrypted header inside the object
// itself; the header is located purely from a hash of the object's physical
// name and file access key fed to a pseudorandom block-number generator.
// Hidden blocks are camouflaged among abandoned blocks (marked used at
// format time but untraceable) and dummy hidden files (periodically updated
// by the system), and each hidden file keeps an internal pool of free blocks
// so bitmap-snapshot attacks cannot separate data blocks from free ones.
//
// The package provides the nine steg_* APIs of Section 4, plain-file
// operations through an embedded central directory, and the backup/recovery
// procedure of Section 3.3.
package stegfs

import "fmt"

// Object type flags stored in hidden headers (paper §4: objtype 'f' / 'd',
// plus the system's dummy files).
const (
	FlagFile  byte = 1 << 0 // regular hidden file
	FlagDir   byte = 1 << 1 // hidden directory (payload is an entry list)
	FlagDummy byte = 1 << 2 // system-maintained dummy hidden file
)

// Params are the tunables of StegFS, mirroring Table 1 of the paper plus
// the implementation knobs of this reproduction.
type Params struct {
	// PctAbandoned is the fraction of data-region blocks abandoned at format
	// time (marked used in the bitmap but belonging to nothing).
	// Table 1 default: 1%.
	PctAbandoned float64

	// FreeMin is the minimum number of free blocks a hidden file keeps in
	// its internal pool; when the pool falls below it the pool is topped up.
	// Table 1 default: 0.
	FreeMin int

	// FreeMax is the maximum number of free blocks a hidden file holds;
	// truncation returns blocks to the file system beyond this bound.
	// Table 1 default: 10.
	FreeMax int

	// NDummy is the number of dummy hidden files created at format time and
	// refreshed by TickDummies. Table 1 default: 10.
	NDummy int

	// DummyAvgSize is the average dummy file size in bytes. Table 1
	// default: 1 MB.
	DummyAvgSize int64

	// MaxPlainFiles bounds the central directory.
	MaxPlainFiles int

	// MaxHeaderProbes bounds the pseudorandom search for a hidden header,
	// both at creation (looking for a free block) and retrieval (looking
	// for a signature match).
	MaxHeaderProbes int

	// FreeProbeStop ends a retrieval probe early after this many candidates
	// were found free in the bitmap. A header is always placed on the first
	// candidate that was free at creation time, so an existing object's
	// header can only lie beyond k free candidates if all k were allocated
	// at creation and freed since — vanishingly unlikely for moderate k.
	// This keeps "no such file" lookups cheap without weakening deniability
	// (the bound is public and key-independent).
	FreeProbeStop int

	// Seed fixes all non-cryptographic randomness (block placement, dummy
	// sizes, format fill) so experiments are repeatable.
	Seed int64

	// DeterministicKeys derives the volume key and HiddenView file access
	// keys from Seed instead of crypto/rand. This makes experiments exactly
	// replayable (block placement depends on the keys). Never enable it on
	// a volume that needs real secrecy.
	DeterministicKeys bool

	// FillVolume controls whether format writes random patterns into every
	// block ("randomly generated patterns are written into all the blocks so
	// that used blocks do not stand out from the free blocks", §3.1).
	// Required for the steganographic property; benchmarks on large volumes
	// may disable it and reset the simulated clock after setup.
	FillVolume bool
}

// DefaultParams returns the Table 1 defaults.
func DefaultParams() Params {
	return Params{
		PctAbandoned:    0.01,
		FreeMin:         0,
		FreeMax:         10,
		NDummy:          10,
		DummyAvgSize:    1 << 20,
		MaxPlainFiles:   1024,
		MaxHeaderProbes: 1 << 17,
		FreeProbeStop:   64,
		Seed:            1,
		FillVolume:      true,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.PctAbandoned < 0 || p.PctAbandoned >= 1 {
		return fmt.Errorf("stegfs: PctAbandoned %v out of [0,1)", p.PctAbandoned)
	}
	if p.FreeMin < 0 || p.FreeMax < p.FreeMin {
		return fmt.Errorf("stegfs: free pool bounds [%d,%d] invalid", p.FreeMin, p.FreeMax)
	}
	if p.NDummy < 0 {
		return fmt.Errorf("stegfs: NDummy %d negative", p.NDummy)
	}
	if p.DummyAvgSize < 0 {
		return fmt.Errorf("stegfs: DummyAvgSize %d negative", p.DummyAvgSize)
	}
	if p.MaxPlainFiles <= 0 {
		return fmt.Errorf("stegfs: MaxPlainFiles %d must be positive", p.MaxPlainFiles)
	}
	if p.MaxHeaderProbes <= 0 {
		return fmt.Errorf("stegfs: MaxHeaderProbes %d must be positive", p.MaxHeaderProbes)
	}
	if p.FreeProbeStop <= 0 {
		return fmt.Errorf("stegfs: FreeProbeStop %d must be positive", p.FreeProbeStop)
	}
	return nil
}
