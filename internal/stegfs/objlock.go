package stegfs

import "sync"

// lockTable hands out per-hidden-object locks keyed by header block number,
// so operations on distinct hidden objects proceed in parallel while reads
// and writes of the same object serialize. Entries are reference-counted and
// reclaimed when the last holder releases, so the table stays proportional
// to the number of objects currently being accessed, not to the number of
// objects on the volume.
//
// The table also carries the volume's freeze gate: every per-object
// acquisition holds the gate shared, plain-file mutators hold it shared
// around their calls (EnterGate/ExitGate), and Freeze takes it exclusively,
// giving whole-volume operations (Backup, Sync) a point where no hidden
// object — and no plain file — is mid-mutation.
//
// Lock hierarchy (outermost first):
//
//	FS.nsMu  →  lockTable (gate, then one object lock)  →  FS.createMu
//	stripe  →  FS.mu  →  allocation-group locks (internal/alloc)  →
//	cache/device locks
//
// Allocation-group mutexes are leaves: the sharded allocator never takes
// another lock while holding one, and callers hold at most one group lock
// at a time (inside the allocator). Never acquire a per-object lock while
// holding a later-level lock, with one audited exception: createHidden
// locks the object it just allocated while still holding its name-stripe
// mutex. It pre-takes the gate with EnterGate (before the stripe, in
// hierarchy order) and then uses LockGateHeld, so the gate can never block
// while the stripe is held; the object mutex can at worst wait briefly for
// a deleter still tearing down a previous object that recycled the same
// header block — never a deadlock, since deleters take neither stripes nor
// the gate exclusively.
type lockTable struct {
	// lockcheck:level 20 volume/gate
	gate sync.RWMutex // freeze gate; object holders share it, Freeze excludes them
	// t.mu is deliberately unleveled: it protects only the table map, is
	// held for a few map operations at a time, and never wraps another
	// acquisition — guard discipline is all it needs.
	mu sync.Mutex // guards m
	// lockcheck:guardedby mu
	m map[int64]*objLock
	// lockcheck:guardedby mu
	free []*objLock // reclaimed entries kept for reuse (bounded)
}

// lockFreelistCap bounds the reclaimed-entry freelist. Each per-object open
// retires its lock entry on release; without reuse every open/release pair
// allocates a fresh objLock, which alone keeps the cached read path off
// zero allocations per operation.
const lockFreelistCap = 128

type objLock struct {
	refs int
	// lockcheck:level 21 volume/objLock
	mu sync.RWMutex
}

func newLockTable() *lockTable {
	return &lockTable{m: make(map[int64]*objLock)}
}

// get returns the lock for header block b, creating it on first use, with
// its reference count raised.
func (t *lockTable) get(b int64) *objLock {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.m[b]
	if !ok {
		if n := len(t.free); n > 0 {
			l = t.free[n-1]
			t.free[n-1] = nil
			t.free = t.free[:n-1]
		} else {
			l = &objLock{}
		}
		t.m[b] = l
	}
	l.refs++
	return l
}

// lookup returns the live lock for b without touching its reference count.
// Only holders (who own a reference from get) may call it.
func (t *lockTable) lookup(b int64) *objLock {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[b]
}

// put drops one reference to the lock for b, reclaiming the entry when the
// last holder is gone. The caller must have released the object mutex first:
// every waiter takes its reference before blocking, so an entry at zero
// references has neither holders nor waiters and is safe to drop.
func (t *lockTable) put(b int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.m[b]
	l.refs--
	if l.refs == 0 {
		// At zero references there are neither holders nor waiters (see
		// above), so the mutex is quiescent and the entry can be reused.
		delete(t.m, b)
		if len(t.free) < lockFreelistCap {
			t.free = append(t.free, l)
		}
	}
}

// Lock takes the exclusive lock of the object whose header lives in block b.
// lockcheck:acquire volume/gate shared
// lockcheck:acquire volume/objLock
func (t *lockTable) Lock(b int64) {
	t.gate.RLock()
	t.get(b).mu.Lock()
}

// Unlock releases an exclusive hold.
// lockcheck:release volume/objLock
// lockcheck:release volume/gate shared
func (t *lockTable) Unlock(b int64) {
	t.lookup(b).mu.Unlock()
	t.put(b)
	t.gate.RUnlock()
}

// RLock takes the shared lock of the object whose header lives in block b.
// lockcheck:acquire volume/gate shared
// lockcheck:acquire volume/objLock shared
func (t *lockTable) RLock(b int64) {
	t.gate.RLock()
	t.get(b).mu.RLock()
}

// RUnlock releases a shared hold.
// lockcheck:release volume/objLock shared
// lockcheck:release volume/gate shared
func (t *lockTable) RUnlock(b int64) {
	t.lookup(b).mu.RUnlock()
	t.put(b)
	t.gate.RUnlock()
}

// EnterGate takes the freeze gate shared without locking any object.
// Plain-file mutators hold it around their calls, and createHidden uses it
// to establish the gate → name-stripe order up front, so it can later lock
// its freshly allocated object with LockGateHeld while holding the stripe
// without ever waiting on the gate there (waiting on the gate while holding
// the stripe would stall a same-name create behind a pending Freeze, and
// the gate must always be taken before any later-level lock, in Freeze's
// order).
// lockcheck:acquire volume/gate shared
func (t *lockTable) EnterGate() { t.gate.RLock() }

// ExitGate releases a shared gate hold taken with EnterGate and not yet
// transferred to an object lock.
// lockcheck:release volume/gate shared
func (t *lockTable) ExitGate() { t.gate.RUnlock() }

// LockGateHeld locks object b exclusively for a caller that already holds
// the gate shared (via EnterGate). The matching release is the ordinary
// Unlock, which gives the gate hold back.
// lockcheck:holds volume/gate shared
// lockcheck:acquire volume/objLock
func (t *lockTable) LockGateHeld(b int64) { t.get(b).mu.Lock() }

// Freeze blocks until no per-object lock is held and prevents new ones from
// being taken until Unfreeze. Whole-volume operations (Backup, Sync) use
// this to quiesce hidden-object activity. Freeze is taken BEFORE FS.mu by
// its callers; since object holders never nest a second object acquisition
// (hand-over-hand only), a pending Freeze cannot deadlock a holder.
// lockcheck:acquire volume/gate
func (t *lockTable) Freeze() { t.gate.Lock() }

// Unfreeze reopens the gate.
// lockcheck:release volume/gate
func (t *lockTable) Unfreeze() { t.gate.Unlock() }
