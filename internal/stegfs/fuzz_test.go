package stegfs

import (
	"math"
	"testing"

	"stegfs/internal/ptree"
	"stegfs/internal/sgcrypto"
)

// FuzzDecodeHeader feeds arbitrary bytes to the hidden-header decoder. The
// decoder parses data that was decrypted with an attacker-influenced key, so
// it must never panic, whatever the input. When the input happens to carry a
// matching signature, a successful decode must survive an encode→decode
// round trip.
func FuzzDecodeHeader(f *testing.F) {
	sig := sgcrypto.Signature("fuzz/header", []byte("fak"))
	// Seed 1: a well-formed header.
	valid := &header{sig: sig, flags: FlagFile, size: 12345, nblocks: 25,
		root: ptree.NewRoot(hdrNumDirect), free: []int64{7, 9, 11}}
	for i := range valid.root.Direct {
		valid.root.Direct[i] = int64(100 + i)
	}
	buf := make([]byte, 1024)
	if err := encodeHeader(valid, buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	// Seed 2: matching signature, corrupt free count.
	corrupt := append([]byte(nil), buf...)
	corrupt[hdrFixedLen-2] = 0xFF
	corrupt[hdrFixedLen-1] = 0xFF
	f.Add(corrupt)
	// Seed 3: garbage.
	f.Add([]byte("short"))
	f.Add(make([]byte, hdrFixedLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic, matching signature or not.
		if _, _, err := decodeHeader(data, sig); err != nil {
			_ = err // errors are fine; panics are not
		}
		// Force the signature path: make the prefix match so parsing runs.
		if len(data) >= hdrFixedLen {
			forced := append([]byte(nil), data...)
			copy(forced, sig[:])
			h, ok, err := decodeHeader(forced, sig)
			if err != nil || !ok {
				return
			}
			// Round trip: what decoded must re-encode and decode identically.
			out := make([]byte, len(forced))
			if err := encodeHeader(h, out); err != nil {
				t.Fatalf("re-encode of decoded header failed: %v", err)
			}
			h2, ok, err := decodeHeader(out, sig)
			if err != nil || !ok {
				t.Fatalf("re-decode failed: ok=%v err=%v", ok, err)
			}
			if h2.size != h.size || h2.nblocks != h.nblocks || h2.flags != h.flags ||
				h2.root.Single != h.root.Single || h2.root.Double != h.root.Double ||
				len(h2.free) != len(h.free) {
				t.Fatalf("header round trip mismatch: %+v vs %+v", h, h2)
			}
		}
	})
}

// FuzzDecodeSuper feeds arbitrary bytes to the superblock decoder (block 0
// is plaintext and attacker-writable on a seized disk, so this parser sees
// fully untrusted input). It must never panic, and a successful decode must
// round-trip through encodeSuper.
func FuzzDecodeSuper(f *testing.F) {
	sb := &superblock{
		blockSize: 512, numBlocks: 8192, bmStart: 1, bmLen: 2,
		inoStart: 3, inoLen: 8, dataStart: 11, maxPlain: 64,
		pctAband: 0.01, freeMin: 0, freeMax: 10, nDummy: 2,
		dummyAvg: 2048, seed: 1, nAbandoned: 80,
		headerProbe: 1 << 17, freeStop: 64, flags: flagDeterministicKeys,
	}
	buf := make([]byte, 512)
	if err := encodeSuper(sb, buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	f.Add([]byte("STEGFS03 truncated"))
	f.Add(make([]byte, superblockLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := decodeSuper(data)
		if err != nil {
			return
		}
		out := make([]byte, superblockLen)
		if err := encodeSuper(got, out); err != nil {
			t.Fatalf("re-encode of decoded superblock failed: %v", err)
		}
		got2, err := decodeSuper(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if math.IsNaN(got.pctAband) && math.IsNaN(got2.pctAband) {
			// NaN != NaN would fail the struct comparison below even though
			// the round trip preserved the bytes.
			got.pctAband, got2.pctAband = 0, 0
		}
		if *got2 != *got {
			t.Fatalf("superblock round trip mismatch:\n%+v\n%+v", got, got2)
		}
	})
}
