package stegfs

import (
	"bytes"
	"testing"

	"stegfs/internal/vdisk"
)

// newTestFS formats a small in-memory StegFS volume for tests.
func newTestFS(t *testing.T, numBlocks int64, blockSize int, mutate func(*Params)) (*FS, *vdisk.MemStore) {
	t.Helper()
	store, err := vdisk.NewMemStore(numBlocks, blockSize)
	if err != nil {
		t.Fatalf("NewMemStore: %v", err)
	}
	p := DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 4 * int64(blockSize)
	p.MaxPlainFiles = 64
	mutateAnd := func(q *Params) {
		if mutate != nil {
			mutate(q)
		}
	}
	mutateAnd(&p)
	fs, err := Format(store, p)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return fs, store
}

func TestSmokeHiddenRoundTrip(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	view := fs.NewHiddenView("alice")
	payload := bytes.Repeat([]byte("secret!"), 300)
	if err := view.Create("doc", payload); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := view.Read("doc")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: got %d bytes", len(got))
	}
}

func TestSmokePlainRoundTrip(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	payload := bytes.Repeat([]byte("plain"), 500)
	if err := fs.Create("hello.txt", payload); err != nil {
		t.Fatalf("Create: %v", err)
	}
	got, err := fs.Read("hello.txt")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("plain round trip mismatch")
	}
}
