package stegfs

import (
	"errors"
	"sync"

	"stegfs/internal/vdisk"
)

// ErrReadOnly reports a mutation attempted on a degraded mount. After an
// unrecoverable device write error the FS flips to read-only: reads keep
// serving from whatever is reachable, mutators fail fast with this error
// instead of wedging behind a device that cannot persist them.
var ErrReadOnly = errors.New("stegfs: volume degraded to read-only")

// Health describes a mount's fault state, surfaced by FS.Health.
type Health struct {
	// ReadOnly is true once an unrecoverable write error degraded the mount.
	ReadOnly bool
	// Reason is the error that caused the degradation ("" while healthy).
	Reason string
	// Faults counts device-class write failures observed by the FS — with a
	// healthy retry layer underneath this stays 0, transients included.
	Faults int64
	// DirtyBlocks is the cache's dirty backlog (0 when uncached).
	DirtyBlocks int
	// Retries and GiveUps are the retry layer's counters when the volume is
	// mounted WithRetry (0 otherwise).
	Retries int64
	GiveUps int64
}

// healthState carries the degradation flag. Its mutex is a guard-only leaf:
// deliberately unleveled (like the lockTable's internal mutex), it is taken
// only for field access, never while acquiring any other lock or doing I/O,
// so it can be consulted from any point in the hierarchy.
type healthState struct {
	mu sync.Mutex
	// lockcheck:guardedby mu
	roReason error // first unrecoverable write error; nil while writable
	// lockcheck:guardedby mu
	faults int64
}

// checkWritable gates every mutator entry point: once the mount is degraded,
// mutations fail fast with ErrReadOnly.
func (fs *FS) checkWritable() error {
	fs.health.mu.Lock()
	defer fs.health.mu.Unlock()
	if fs.health.roReason != nil {
		return ErrReadOnly
	}
	return nil
}

// observe inspects an error leaving a write path. Device-class faults
// (vdisk.IsFault) count and degrade the mount; logical errors (ErrNoSpace,
// ErrExists, ...) pass through untouched. Returns err for chaining.
func (fs *FS) observe(err error) error {
	if err == nil || !vdisk.IsFault(err) {
		return err
	}
	fs.health.mu.Lock()
	defer fs.health.mu.Unlock()
	fs.health.faults++
	if fs.health.roReason == nil {
		fs.health.roReason = err
	}
	return err
}

// Health reports the mount's current fault state.
func (fs *FS) Health() Health {
	fs.health.mu.Lock()
	ro := fs.health.roReason
	faults := fs.health.faults
	fs.health.mu.Unlock()
	h := Health{Faults: faults}
	if ro != nil {
		h.ReadOnly = true
		h.Reason = ro.Error()
	}
	if fs.cache != nil {
		h.DirtyBlocks = fs.cache.Dirty()
	}
	if fs.retry != nil {
		st := fs.retry.Stats()
		h.Retries, h.GiveUps = st.Retries, st.GiveUps
	}
	return h
}
