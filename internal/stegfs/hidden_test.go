package stegfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
	"stegfs/internal/sgcrypto"
)

func TestHeaderCodecRoundTrip(t *testing.T) {
	h := &header{
		sig:     sgcrypto.Signature("a/b", []byte("k")),
		flags:   FlagFile,
		size:    999,
		nblocks: 2,
		root:    ptree.NewRoot(hdrNumDirect),
		free:    []int64{5, 9, 200},
	}
	h.root.Direct[0], h.root.Direct[1] = 44, 45
	h.root.Single = 46
	buf := make([]byte, 512)
	if err := encodeHeader(h, buf); err != nil {
		t.Fatal(err)
	}
	got, ok, err := decodeHeader(buf, h.sig)
	if err != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, err)
	}
	if got.size != h.size || got.nblocks != h.nblocks || got.flags != h.flags {
		t.Fatalf("fields mismatch: %+v", got)
	}
	if got.root.Direct[0] != 44 || got.root.Single != 46 {
		t.Fatal("root mismatch")
	}
	if len(got.free) != 3 || got.free[2] != 200 {
		t.Fatalf("free list mismatch: %v", got.free)
	}
}

func TestHeaderSignatureMismatch(t *testing.T) {
	h := &header{sig: sgcrypto.Signature("x", []byte("y")), root: ptree.NewRoot(hdrNumDirect)}
	buf := make([]byte, 512)
	if err := encodeHeader(h, buf); err != nil {
		t.Fatal(err)
	}
	_, ok, err := decodeHeader(buf, sgcrypto.Signature("x", []byte("z")))
	if err != nil || ok {
		t.Fatalf("wrong signature must not match: ok=%v err=%v", ok, err)
	}
}

func TestHeaderFreeCapacity(t *testing.T) {
	capacity := freeCapacity(512)
	if capacity < 10 {
		t.Fatalf("512-byte block holds only %d pool entries; Table 1 default needs 10", capacity)
	}
	h := &header{root: ptree.NewRoot(hdrNumDirect), free: make([]int64, capacity+1)}
	if err := encodeHeader(h, make([]byte, 512)); err == nil {
		t.Fatal("over-capacity pool should fail to encode")
	}
}

func TestHiddenCreateReadWriteDelete(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, nil)
	view := fs.NewHiddenView("u")
	free0 := fs.FreeBlocks()

	want := mkPayload(40_000, 7)
	if err := view.Create("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := view.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}

	// In-place overwrite (same block count).
	want2 := mkPayload(39_000, 9)
	if err := view.Write("f", want2); err != nil {
		t.Fatal(err)
	}
	if got, _ = view.Read("f"); !bytes.Equal(got, want2) {
		t.Fatal("in-place write mismatch")
	}

	// Shrinking write: blocks return to the pool / volume.
	want3 := mkPayload(5_000, 3)
	if err := view.Write("f", want3); err != nil {
		t.Fatal(err)
	}
	if got, _ = view.Read("f"); !bytes.Equal(got, want3) {
		t.Fatal("shrink write mismatch")
	}

	// Growing write.
	want4 := mkPayload(60_000, 5)
	if err := view.Write("f", want4); err != nil {
		t.Fatal(err)
	}
	if got, _ = view.Read("f"); !bytes.Equal(got, want4) {
		t.Fatal("grow write mismatch")
	}

	if err := view.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Read("f"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("deleted file should be gone, got %v", err)
	}
	if fs.FreeBlocks() != free0 {
		t.Fatalf("delete leaked blocks: free %d -> %d", free0, fs.FreeBlocks())
	}
}

func mkPayload(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag ^ byte(i*31)
	}
	return out
}

func TestHiddenWrongKeyIndistinguishable(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	if _, err := fs.createHidden("u/f", []byte("right"), FlagFile, mkPayload(2000, 1)); err != nil {
		t.Fatal(err)
	}
	// Wrong key and nonexistent name produce the identical error class.
	_, errWrongKey := fs.probeHeader("u/f", []byte("wrong"))
	_, errNoFile := fs.probeHeader("u/nothing", []byte("right"))
	if !errors.Is(errWrongKey, fsapi.ErrNotFound) || !errors.Is(errNoFile, fsapi.ErrNotFound) {
		t.Fatalf("want ErrNotFound for both: %v / %v", errWrongKey, errNoFile)
	}
}

func TestHiddenHeaderRelocatable(t *testing.T) {
	// Two objects whose first PRBG candidates collide: the second must land
	// on a later candidate and still be found.
	fs, _ := newTestFS(t, 4096, 512, nil)
	// Occupy many blocks so collisions happen organically.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("u/f%d", i)
		if _, err := fs.createHidden(name, []byte("k"), FlagFile, mkPayload(3000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("u/f%d", i)
		r, err := fs.openShared(name, []byte("k"))
		if err != nil {
			t.Fatalf("lost %s: %v", name, err)
		}
		data, err := fs.readHidden(r)
		fs.release(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, mkPayload(3000, byte(i))) {
			t.Fatalf("%s content mismatch", name)
		}
	}
}

func TestHiddenDuplicateCreateRefused(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	if _, err := fs.createHidden("u/f", []byte("k"), FlagFile, mkPayload(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.createHidden("u/f", []byte("k"), FlagFile, mkPayload(100, 2)); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
}

func TestFreePoolSeededAtCreate(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, func(p *Params) { p.FreeMax = 10 })
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, mkPayload(512, 1))
	if err != nil {
		t.Fatal(err)
	}
	// "StegFS straightaway allocates several blocks to the file": after a
	// 1-block write from a 10-block pool, the pool holds FreeMax-1...FreeMax
	// blocks (top-ups only below FreeMin=0).
	if len(r.hdr.free) == 0 {
		t.Fatal("free pool empty after create")
	}
	// Pool blocks are marked used in the bitmap but hold no data.
	for _, b := range r.hdr.free {
		if !fs.alloc.Test(b) {
			t.Fatalf("pool block %d not marked in bitmap", b)
		}
	}
}

func TestFreePoolTopUpAtFreeMin(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, func(p *Params) { p.FreeMin = 4; p.FreeMax = 8 })
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Take blocks until the pool would dip below FreeMin; it must top up.
	for i := 0; i < 40; i++ {
		if _, err := fs.poolTake(r); err != nil {
			t.Fatal(err)
		}
		if len(r.hdr.free) < fs.params.FreeMin {
			t.Fatalf("pool fell below FreeMin: %d < %d", len(r.hdr.free), fs.params.FreeMin)
		}
	}
}

func TestFreePoolCapAtFreeMax(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, func(p *Params) { p.FreeMax = 6 })
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, nil)
	if err != nil {
		t.Fatal(err)
	}
	free0 := fs.alloc.FreeBlocks()
	// Give back many blocks: the pool absorbs up to FreeMax, the rest go to
	// the volume.
	given := make([]int64, 0, 20)
	for i := 0; i < 20; i++ {
		b, err := fs.alloc.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		given = append(given, b)
	}
	for _, b := range given {
		fs.poolGive(r, b)
	}
	if len(r.hdr.free) > fs.params.FreeMax {
		t.Fatalf("pool exceeded FreeMax: %d > %d", len(r.hdr.free), fs.params.FreeMax)
	}
	// Net effect: pool absorbed (FreeMax - initial) blocks; the rest were
	// freed back, so the free count dropped by exactly the pool growth.
	expectedDrop := int64(fs.params.FreeMax - len(given)) // negative: freed back
	_ = expectedDrop
	if fs.alloc.FreeBlocks() < free0-int64(fs.params.FreeMax) {
		t.Fatal("poolGive leaked allocations")
	}
}

func TestHiddenBlocksAccounting(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, nil)
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, mkPayload(30*512, 1))
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.hiddenBlocks(r)
	if err != nil {
		t.Fatal(err)
	}
	// 30 data + 1 header + 1 single-indirect (30 > 24 direct) + pool.
	want := 30 + 1 + 1 + len(r.hdr.free)
	if len(blocks) != want {
		t.Fatalf("hiddenBlocks = %d, want %d", len(blocks), want)
	}
	seen := map[int64]bool{}
	for _, b := range blocks {
		if seen[b] {
			t.Fatalf("block %d listed twice", b)
		}
		seen[b] = true
		if !fs.alloc.Test(b) {
			t.Fatalf("block %d not marked used", b)
		}
	}
}

func TestHiddenFileLargeNeedsDoubleIndirect(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, nil)
	view := fs.NewHiddenView("u")
	// 512B blocks: 24 direct + 64 single = 88; force double-indirect.
	want := mkPayload(512*200, 2)
	if err := view.Create("big", want); err != nil {
		t.Fatal(err)
	}
	got, err := view.Read("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("double-indirect round trip failed")
	}
}

func TestViewStatAndBlocks(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	view := fs.NewHiddenView("u")
	if err := view.Create("f", mkPayload(1500, 1)); err != nil {
		t.Fatal(err)
	}
	fi, err := view.Stat("f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 1500 || fi.Blocks != 3 {
		t.Fatalf("Stat = %+v", fi)
	}
	data, all, err := view.BlocksOf("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3 {
		t.Fatalf("data blocks = %d, want 3", len(data))
	}
	if len(all) < len(data)+1 {
		t.Fatalf("all blocks = %d, want >= %d", len(all), len(data)+1)
	}
}

func TestViewCursors(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	view := fs.NewHiddenView("u")
	want := mkPayload(4000, 1)
	if err := view.Create("f", want); err != nil {
		t.Fatal(err)
	}
	rc, err := view.ReadCursor("f")
	if err != nil {
		t.Fatal(err)
	}
	steps, err := fsapi.Drain(rc)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 8 {
		t.Fatalf("read cursor %d steps, want 8", steps)
	}
	want2 := mkPayload(4000, 9)
	wc, err := view.WriteCursor("f", want2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.Drain(wc); err != nil {
		t.Fatal(err)
	}
	got, err := view.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want2) {
		t.Fatal("cursor write mismatch")
	}
	if _, err := view.WriteCursor("f", mkPayload(100, 1)); err == nil {
		t.Fatal("size-changing write cursor should fail")
	}
}

func TestPlainAndHiddenCoexist(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, nil)
	view := fs.NewHiddenView("u")
	plainWant := mkPayload(20_000, 1)
	hiddenWant := mkPayload(20_000, 2)
	if err := fs.Create("plain", plainWant); err != nil {
		t.Fatal(err)
	}
	if err := view.Create("hidden", hiddenWant); err != nil {
		t.Fatal(err)
	}
	// Interleave writes; neither side may clobber the other.
	if err := fs.Write("plain", plainWant); err != nil {
		t.Fatal(err)
	}
	if err := view.Write("hidden", hiddenWant); err != nil {
		t.Fatal(err)
	}
	gotP, err := fs.Read("plain")
	if err != nil {
		t.Fatal(err)
	}
	gotH, err := view.Read("hidden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotP, plainWant) || !bytes.Equal(gotH, hiddenWant) {
		t.Fatal("plain/hidden interference")
	}
	// The central directory must not reference any hidden block.
	refs, err := fs.PlainReferencedBlocks()
	if err != nil {
		t.Fatal(err)
	}
	_, all, err := view.BlocksOf("hidden")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range all {
		if refs[b] {
			t.Fatalf("central directory references hidden block %d", b)
		}
	}
}
