package stegfs

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"stegfs/internal/fsapi"
	"stegfs/internal/sgcrypto"
)

func newSessionFS(t *testing.T) (*FS, *Session) {
	t.Helper()
	fs, _ := newTestFS(t, 8192, 512, nil)
	s, err := fs.NewSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	return fs, s
}

func TestSessionInvalidUID(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	if _, err := fs.NewSession(""); err == nil {
		t.Fatal("empty uid should fail")
	}
	if _, err := fs.NewSession("a\x00b"); err == nil {
		t.Fatal("NUL in uid should fail")
	}
}

func TestStegCreateConnectReadCycle(t *testing.T) {
	_, s := newSessionFS(t)
	uak := []byte("k1")
	want := mkPayload(3000, 1)
	if err := s.CreateHidden("doc", uak, FlagFile, want); err != nil {
		t.Fatal(err)
	}
	// Invisible before connect.
	if _, err := s.ReadHidden("doc"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("unconnected object should be invisible, got %v", err)
	}
	if err := s.Connect("doc", uak); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadHidden("doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch")
	}
	// Disconnect hides it again.
	s.Disconnect("doc")
	if _, err := s.ReadHidden("doc"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("disconnected object should be invisible")
	}
}

func TestStegCreateValidation(t *testing.T) {
	_, s := newSessionFS(t)
	uak := []byte("k")
	if err := s.CreateHidden("", uak, FlagFile, nil); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := s.CreateHidden("x", uak, 0xff, nil); err == nil {
		t.Fatal("bad objtype should fail")
	}
	if err := s.CreateHidden("d", uak, FlagDir, []byte("data")); err == nil {
		t.Fatal("directory with initial data should fail")
	}
	if err := s.CreateHidden("dup", uak, FlagFile, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateHidden("dup", uak, FlagFile, nil); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("duplicate name should fail with ErrExists, got %v", err)
	}
}

func TestHiddenDirectoriesNested(t *testing.T) {
	_, s := newSessionFS(t)
	uak := []byte("k")
	if err := s.CreateHidden("docs", uak, FlagDir, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateHidden("docs/work", uak, FlagDir, nil); err != nil {
		t.Fatal(err)
	}
	want := mkPayload(900, 5)
	if err := s.CreateHidden("docs/work/plan.txt", uak, FlagFile, want); err != nil {
		t.Fatal(err)
	}
	// Connecting the root directory reveals all offspring (§4).
	if err := s.Connect("docs", uak); err != nil {
		t.Fatal(err)
	}
	vis := s.Visible()
	sort.Strings(vis)
	wantVis := []string{"docs", "docs/work", "docs/work/plan.txt"}
	if len(vis) != len(wantVis) {
		t.Fatalf("visible = %v, want %v", vis, wantVis)
	}
	for i := range vis {
		if vis[i] != wantVis[i] {
			t.Fatalf("visible = %v, want %v", vis, wantVis)
		}
	}
	got, err := s.ReadHidden("docs/work/plan.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("nested file mismatch")
	}
	// Disconnecting the root hides the whole subtree.
	s.Disconnect("docs")
	if len(s.Visible()) != 0 {
		t.Fatalf("after disconnect: %v", s.Visible())
	}
}

func TestDeleteHiddenDirectoryRules(t *testing.T) {
	_, s := newSessionFS(t)
	uak := []byte("k")
	if err := s.CreateHidden("d", uak, FlagDir, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateHidden("d/f", uak, FlagFile, mkPayload(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteHidden("d", uak); err == nil {
		t.Fatal("deleting a non-empty directory should fail")
	}
	if err := s.DeleteHidden("d/f", uak); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteHidden("d", uak); err != nil {
		t.Fatal(err)
	}
	if _, err := s.fs.resolve(s.uid, uak, "d"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("directory still resolvable after delete")
	}
}

func TestHideUnhide(t *testing.T) {
	fs, s := newSessionFS(t)
	uak := []byte("k")
	want := mkPayload(2500, 3)
	if err := fs.Create("public.txt", want); err != nil {
		t.Fatal(err)
	}
	// steg_hide: plain -> hidden, plain deleted.
	if err := s.Hide("public.txt", "private.txt", uak); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("public.txt"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("plain source should be deleted after hide")
	}
	if err := s.Connect("private.txt", uak); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadHidden("private.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hide lost content")
	}
	// steg_unhide: hidden -> plain, hidden deleted.
	if err := s.Unhide("restored.txt", "private.txt", uak); err != nil {
		t.Fatal(err)
	}
	got, err = fs.Read("restored.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("unhide lost content")
	}
	if err := s.Connect("private.txt", uak); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("hidden source should be deleted after unhide, got %v", err)
	}
}

func TestWriteHiddenThroughSession(t *testing.T) {
	_, s := newSessionFS(t)
	uak := []byte("k")
	if err := s.CreateHidden("f", uak, FlagFile, mkPayload(1000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("f", uak); err != nil {
		t.Fatal(err)
	}
	want := mkPayload(12_000, 8)
	if err := s.WriteHidden("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadHidden("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("session write mismatch")
	}
}

func TestListHidden(t *testing.T) {
	_, s := newSessionFS(t)
	uak := []byte("k")
	for _, n := range []string{"a", "b", "c"} {
		if err := s.CreateHidden(n, uak, FlagFile, nil); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.ListHidden(uak)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("ListHidden = %d entries, want 3", len(entries))
	}
	// A different UAK sees nothing — not even that entries exist.
	entries, err = s.ListHidden([]byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("foreign UAK sees %d entries", len(entries))
	}
}

func TestSharingProtocol(t *testing.T) {
	fs, alice := newSessionFS(t)
	bob, err := fs.NewSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	aliceUAK, bobUAK := []byte("ak"), []byte("bk")
	want := mkPayload(2000, 4)
	if err := alice.CreateHidden("shared.txt", aliceUAK, FlagFile, want); err != nil {
		t.Fatal(err)
	}
	priv, err := sgcrypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := alice.GetEntry("shared.txt", aliceUAK, &priv.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.AddEntry(ct, priv, bobUAK); err != nil {
		t.Fatal(err)
	}
	if err := bob.Connect("shared.txt", bobUAK); err != nil {
		t.Fatal(err)
	}
	got, err := bob.ReadHidden("shared.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("shared content mismatch")
	}
	// Wrong private key cannot use the entry file.
	otherPriv, _ := sgcrypto.GenerateKeyPair()
	carol, _ := fs.NewSession("carol")
	if err := carol.AddEntry(ct, otherPriv, []byte("ck")); err == nil {
		t.Fatal("wrong private key should fail AddEntry")
	}
	// A compromised entry exposes only the one file: the FAK in it opens
	// shared.txt, not Alice's other objects (each file has its own FAK).
	if err := alice.CreateHidden("secret2", aliceUAK, FlagFile, mkPayload(100, 9)); err != nil {
		t.Fatal(err)
	}
	entries, _ := bob.ListHidden(bobUAK)
	if len(entries) != 1 {
		t.Fatalf("bob's directory has %d entries, want 1", len(entries))
	}
}

func TestRevokeInvalidatesOldFAK(t *testing.T) {
	fs, alice := newSessionFS(t)
	bob, _ := fs.NewSession("bob")
	aliceUAK, bobUAK := []byte("ak"), []byte("bk")
	want := mkPayload(800, 2)
	if err := alice.CreateHidden("doc", aliceUAK, FlagFile, want); err != nil {
		t.Fatal(err)
	}
	priv, _ := sgcrypto.GenerateKeyPair()
	ct, _ := alice.GetEntry("doc", aliceUAK, &priv.PublicKey)
	if err := bob.AddEntry(ct, priv, bobUAK); err != nil {
		t.Fatal(err)
	}
	if err := bob.Connect("doc", bobUAK); err != nil {
		t.Fatal(err)
	}
	// Revoke: fresh FAK, old object destroyed.
	if err := alice.Revoke("doc", "doc", aliceUAK); err != nil {
		t.Fatal(err)
	}
	bob.Logoff()
	if err := bob.Connect("doc", bobUAK); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("bob should lose access after revoke, got %v", err)
	}
	// Alice keeps access under the new FAK.
	if err := alice.Connect("doc", aliceUAK); err != nil {
		t.Fatal(err)
	}
	got, err := alice.ReadHidden("doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("revoked copy lost content")
	}
}

func TestConnectLevelHierarchy(t *testing.T) {
	_, s := newSessionFS(t)
	// Three UAKs in a linear hierarchy: level 1 = address book, level 2 =
	// finances, level 3 = the really sensitive stuff.
	uaks := [][]byte{[]byte("l1"), []byte("l2"), []byte("l3")}
	for i, uak := range uaks {
		name := []string{"contacts", "finances", "crown-jewels"}[i]
		if err := s.CreateHidden(name, uak, FlagFile, mkPayload(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Signing on at level 2 reveals levels 1 and 2 only.
	if err := s.ConnectLevel(uaks, 2); err != nil {
		t.Fatal(err)
	}
	vis := s.Visible()
	sort.Strings(vis)
	if len(vis) != 2 || vis[0] != "contacts" || vis[1] != "finances" {
		t.Fatalf("level 2 visible = %v", vis)
	}
	// Under compulsion the user can disclose l1+l2; nothing reveals that a
	// third UAK exists.
	if _, err := s.ReadHidden("crown-jewels"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("level 3 object visible at level 2")
	}
	if err := s.ConnectLevel(uaks, 5); err == nil {
		t.Fatal("level beyond hierarchy should fail")
	}
}

func TestLogoffDisconnectsAll(t *testing.T) {
	_, s := newSessionFS(t)
	uak := []byte("k")
	for _, n := range []string{"a", "b"} {
		if err := s.CreateHidden(n, uak, FlagFile, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Connect(n, uak); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Visible()) != 2 {
		t.Fatal("setup failed")
	}
	s.Logoff()
	if len(s.Visible()) != 0 {
		t.Fatal("logoff left objects connected")
	}
}

func TestCrossUserNameIsolation(t *testing.T) {
	// Two users, same object name, same UAK string: physical names differ
	// (uid prefix), so the objects never collide (§3.1).
	fs, alice := newSessionFS(t)
	bob, _ := fs.NewSession("bob")
	uak := []byte("same-key")
	wantA := mkPayload(700, 1)
	wantB := mkPayload(700, 2)
	if err := alice.CreateHidden("notes", uak, FlagFile, wantA); err != nil {
		t.Fatal(err)
	}
	if err := bob.CreateHidden("notes", uak, FlagFile, wantB); err != nil {
		t.Fatal(err)
	}
	if err := alice.Connect("notes", uak); err != nil {
		t.Fatal(err)
	}
	if err := bob.Connect("notes", uak); err != nil {
		t.Fatal(err)
	}
	gotA, _ := alice.ReadHidden("notes")
	gotB, _ := bob.ReadHidden("notes")
	if !bytes.Equal(gotA, wantA) || !bytes.Equal(gotB, wantB) {
		t.Fatal("cross-user collision")
	}
}

func TestDirEntryCodec(t *testing.T) {
	in := []Entry{
		{Name: "a", Phys: "alice/a", FAK: []byte{1, 2, 3}, Flags: FlagFile},
		{Name: "d", Phys: "alice/d", FAK: []byte{4}, Flags: FlagDir},
		{Name: "", Phys: "", FAK: nil, Flags: 0},
	}
	out, err := decodeEntries(encodeEntries(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name || out[i].Phys != in[i].Phys || out[i].Flags != in[i].Flags {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
		if !bytes.Equal(out[i].FAK, in[i].FAK) {
			t.Fatalf("entry %d FAK mismatch", i)
		}
	}
	// Truncated payloads fail cleanly.
	raw := encodeEntries(in)
	for _, cut := range []int{3, 5, 10} {
		if cut < len(raw) {
			if _, err := decodeEntries(raw[:cut]); err == nil {
				t.Fatalf("truncation at %d not detected", cut)
			}
		}
	}
}
