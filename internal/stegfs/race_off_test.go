//go:build !race

package stegfs

const raceEnabled = false
