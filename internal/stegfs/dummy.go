package stegfs

import (
	"encoding/binary"
	"fmt"

	"stegfs/internal/sgcrypto"
)

// dummyFAK derives the access key of dummy file i from the volume key. The
// system must be able to relocate its dummies, so their keys are derived
// from state stored in the superblock — exactly the weakness the paper
// concedes ("dummy files are maintained by StegFS and could be vulnerable to
// an attacker with administrator privileges"), which is why abandoned blocks
// exist as a second, untraceable layer of cover.
func (fs *FS) dummyFAK(i int) []byte {
	var buf [40]byte
	copy(buf[:32], fs.sb.volKey[:])
	binary.BigEndian.PutUint64(buf[32:], uint64(i))
	sig := sgcrypto.Signature("stegfs.dummy.fak", buf[:])
	return sig[:]
}

// dummyPhys returns the physical name of dummy file i.
func dummyPhys(i int) string { return fmt.Sprintf("%s%d", physDummy, i) }

// dummyPayload builds random-looking content of the given size for a dummy.
// The nonce comes from the allocator's lock-free auxiliary generator, so no
// lock is needed.
func (fs *FS) dummyPayload(i int, size int64) []byte {
	var seed [48]byte
	copy(seed[:32], fs.sb.volKey[:])
	binary.BigEndian.PutUint64(seed[32:], uint64(i))
	binary.BigEndian.PutUint64(seed[40:], uint64(fs.alloc.Int63()))
	out := make([]byte, size)
	sgcrypto.NewRandomFiller(seed[:]).Fill(out)
	return out
}

// dummySize draws a size uniformly in [0.5, 1.5] x DummyAvgSize, at least
// one block.
func (fs *FS) dummySize() int64 {
	avg := fs.params.DummyAvgSize
	if avg <= 0 {
		return int64(fs.dev.BlockSize())
	}
	lo := avg / 2
	size := lo + fs.alloc.Int63n(avg+1)
	if size < int64(fs.dev.BlockSize()) {
		size = int64(fs.dev.BlockSize())
	}
	return size
}

// createDummies populates the NDummy dummy hidden files at format time.
func (fs *FS) createDummies() error {
	for i := 0; i < fs.params.NDummy; i++ {
		payload := fs.dummyPayload(i, fs.dummySize())
		if _, err := fs.createHidden(dummyPhys(i), fs.dummyFAK(i), FlagDummy, payload); err != nil {
			return fmt.Errorf("dummy %d: %w", i, err)
		}
	}
	return nil
}

// TickDummies performs one round of dummy-file maintenance: every dummy is
// rewritten with fresh content and a resampled size, churning the bitmap so
// that "an observer [cannot deduce] that blocks allocated between successive
// snapshots of the bitmap that do not belong to any plain files must hold
// hidden data" (§3.1). Each dummy is refreshed under its own object lock, so
// a maintenance tick never stalls readers of unrelated hidden files.
func (fs *FS) TickDummies() error {
	for i := 0; i < fs.params.NDummy; i++ {
		if err := fs.tickDummy(i); err != nil {
			return err
		}
	}
	return nil
}

func (fs *FS) tickDummy(i int) error {
	r, err := fs.openExclusive(dummyPhys(i), fs.dummyFAK(i))
	if err != nil {
		return fmt.Errorf("dummy %d lost: %w", i, err)
	}
	defer fs.release(r)
	payload := fs.dummyPayload(i, fs.dummySize())
	if err := fs.rewriteHidden(r, payload); err != nil {
		return fmt.Errorf("dummy %d refresh: %w", i, err)
	}
	// Rotate the internal free pool so the tick is visible in the
	// bitmap even when the resize was absorbed by the pool — the whole
	// point of dummies is to churn allocations between snapshots. The old
	// pool blocks are released only AFTER the header no longer references
	// them on disk: freeing first would let a concurrent writer claim a
	// block the still-persisted header lists, and the next tick's free loop
	// would then liberate that other object's live data.
	oldPool := r.hdr.free
	r.hdr.free = nil
	fs.poolTopUp(r)
	if err := fs.flushHeader(r); err != nil {
		// Disk still shows the old pool; release the fresh blocks and keep
		// the old list in memory so ownership stays single either way.
		fs.alloc.FreeBatch(r.hdr.free)
		r.hdr.free = oldPool
		return fmt.Errorf("dummy %d pool rotate: %w", i, err)
	}
	fs.alloc.FreeBatch(oldPool)
	return nil
}

// DummyBlocks reports how many blocks the dummy files currently occupy
// (header + data + pointer + pooled blocks). Space-utilization accounting
// uses this.
func (fs *FS) DummyBlocks() (int64, error) {
	var total int64
	for i := 0; i < fs.params.NDummy; i++ {
		r, err := fs.openShared(dummyPhys(i), fs.dummyFAK(i))
		if err != nil {
			return 0, err
		}
		blocks, err := fs.hiddenBlocks(r)
		fs.release(r)
		if err != nil {
			return 0, err
		}
		total += int64(len(blocks))
	}
	return total, nil
}

// AbandonedCount returns the number of blocks abandoned at format time.
func (fs *FS) AbandonedCount() int64 { return int64(fs.sb.nAbandoned) }
