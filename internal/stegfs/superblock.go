package stegfs

import (
	"encoding/binary"
	"fmt"
	"math"
)

// superMagic identifies a StegFS volume.
const superMagic = "STEGFS03"

// superVersion is the on-disk format version.
const superVersion = 1

// superblock is the plaintext metadata in block 0. Everything here is
// deliberately information an adversary may see: volume geometry, region
// boundaries and the public parameters. volKey protects only the dummy
// files, which the paper concedes "could be vulnerable to an attacker with
// administrator privileges" — abandoned blocks provide the extra,
// untraceable layer of cover.
type superblock struct {
	blockSize   uint32
	numBlocks   uint64
	bmStart     uint64
	bmLen       uint64
	inoStart    uint64
	inoLen      uint64
	dataStart   uint64
	maxPlain    uint64
	pctAband    float64
	freeMin     uint32
	freeMax     uint32
	nDummy      uint32
	dummyAvg    uint64
	seed        int64
	volKey      [32]byte // key for system-maintained dummy files
	nAbandoned  uint64   // how many blocks were abandoned at format time
	headerProbe uint32   // MaxHeaderProbes
	freeStop    uint32   // FreeProbeStop
	flags       uint8    // volume flags (flagDeterministicKeys)
}

// flagDeterministicKeys records that the volume key and view FAKs derive
// from the seed (experiment volumes).
const flagDeterministicKeys = 1 << 0

// superblockLen is the serialized length; it must fit the smallest block.
const superblockLen = 8 + 4 + 4 + 8*7 + 8 + 4 + 4 + 4 + 8 + 8 + 32 + 8 + 4 + 4 + 1

// encodeSuper serializes the superblock into buf (one device block).
func encodeSuper(sb *superblock, buf []byte) error {
	if len(buf) < superblockLen {
		return fmt.Errorf("stegfs: block size %d too small for superblock (%d)", len(buf), superblockLen)
	}
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, superMagic)
	off := 8
	put32 := func(v uint32) { binary.BigEndian.PutUint32(buf[off:], v); off += 4 }
	put64 := func(v uint64) { binary.BigEndian.PutUint64(buf[off:], v); off += 8 }
	put32(superVersion)
	put32(sb.blockSize)
	put64(sb.numBlocks)
	put64(sb.bmStart)
	put64(sb.bmLen)
	put64(sb.inoStart)
	put64(sb.inoLen)
	put64(sb.dataStart)
	put64(sb.maxPlain)
	put64(math.Float64bits(sb.pctAband))
	put32(sb.freeMin)
	put32(sb.freeMax)
	put32(sb.nDummy)
	put64(sb.dummyAvg)
	put64(uint64(sb.seed))
	copy(buf[off:], sb.volKey[:])
	off += 32
	put64(sb.nAbandoned)
	put32(sb.headerProbe)
	put32(sb.freeStop)
	buf[off] = sb.flags
	return nil
}

// decodeSuper parses block 0.
func decodeSuper(buf []byte) (*superblock, error) {
	if len(buf) < superblockLen {
		return nil, fmt.Errorf("stegfs: block too small for superblock")
	}
	if string(buf[:8]) != superMagic {
		return nil, fmt.Errorf("stegfs: bad magic %q (not a StegFS volume)", buf[:8])
	}
	off := 8
	get32 := func() uint32 { v := binary.BigEndian.Uint32(buf[off:]); off += 4; return v }
	get64 := func() uint64 { v := binary.BigEndian.Uint64(buf[off:]); off += 8; return v }
	if v := get32(); v != superVersion {
		return nil, fmt.Errorf("stegfs: unsupported version %d", v)
	}
	sb := &superblock{}
	sb.blockSize = get32()
	sb.numBlocks = get64()
	sb.bmStart = get64()
	sb.bmLen = get64()
	sb.inoStart = get64()
	sb.inoLen = get64()
	sb.dataStart = get64()
	sb.maxPlain = get64()
	sb.pctAband = math.Float64frombits(get64())
	sb.freeMin = get32()
	sb.freeMax = get32()
	sb.nDummy = get32()
	sb.dummyAvg = get64()
	sb.seed = int64(get64())
	copy(sb.volKey[:], buf[off:off+32])
	off += 32
	sb.nAbandoned = get64()
	sb.headerProbe = get32()
	sb.freeStop = get32()
	sb.flags = buf[off]
	return sb, nil
}
