package stegfs

import (
	"bytes"
	"strings"
	"testing"

	"stegfs/internal/vdisk"
)

// buildPopulatedFS creates a volume with plain files, hidden files (two
// users) and returns everything needed to verify a recovery.
func buildPopulatedFS(t *testing.T) (*FS, *vdisk.MemStore, map[string][]byte, map[string][]byte) {
	t.Helper()
	fs, store := newTestFS(t, 8192, 512, nil)
	plain := map[string][]byte{
		"readme.txt": mkPayload(1200, 1),
		"notes.md":   mkPayload(4700, 2),
	}
	for n, d := range plain {
		if err := fs.Create(n, d); err != nil {
			t.Fatal(err)
		}
	}
	hidden := map[string][]byte{
		"alice:a1": mkPayload(9000, 3),
		"alice:a2": mkPayload(300, 4),
		"bob:b1":   mkPayload(15000, 5),
	}
	for key, d := range hidden {
		parts := strings.SplitN(key, ":", 2)
		s, err := fs.NewSession(parts[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CreateHidden(parts[1], []byte(parts[0]+"-uak"), FlagFile, d); err != nil {
			t.Fatal(err)
		}
	}
	return fs, store, plain, hidden
}

func checkRecovered(t *testing.T, fs *FS, plain, hidden map[string][]byte) {
	t.Helper()
	for n, want := range plain {
		got, err := fs.Read(n)
		if err != nil {
			t.Fatalf("plain %s: %v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("plain %s content mismatch", n)
		}
	}
	for key, want := range hidden {
		parts := strings.SplitN(key, ":", 2)
		s, err := fs.NewSession(parts[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Connect(parts[1], []byte(parts[0]+"-uak")); err != nil {
			t.Fatalf("hidden %s connect: %v", key, err)
		}
		got, err := s.ReadHidden(parts[1])
		if err != nil {
			t.Fatalf("hidden %s read: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("hidden %s content mismatch", key)
		}
	}
}

func TestBackupRecoverFullCycle(t *testing.T) {
	fs, store, plain, hidden := buildPopulatedFS(t)
	var backup bytes.Buffer
	if err := fs.Backup(&backup); err != nil {
		t.Fatal(err)
	}
	// Trash the entire volume.
	junk := bytes.Repeat([]byte{0xee}, 512)
	for b := int64(0); b < store.NumBlocks(); b++ {
		if err := store.WriteBlock(b, junk); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := Recover(store, bytes.NewReader(backup.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, restored, plain, hidden)
	// Dummies survived too (their blocks were imaged).
	if err := restored.TickDummies(); err != nil {
		t.Fatalf("dummies lost in recovery: %v", err)
	}
}

func TestBackupIsSmallerThanImage(t *testing.T) {
	fs, store, _, _ := buildPopulatedFS(t)
	var backup bytes.Buffer
	if err := fs.Backup(&backup); err != nil {
		t.Fatal(err)
	}
	volBytes := store.NumBlocks() * int64(store.BlockSize())
	if int64(backup.Len()) >= volBytes {
		t.Fatalf("backup (%d) not smaller than full image (%d)", backup.Len(), volBytes)
	}
}

func TestRecoverSurvivesRemount(t *testing.T) {
	fs, store, plain, hidden := buildPopulatedFS(t)
	var backup bytes.Buffer
	if err := fs.Backup(&backup); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0x11}, 512)
	for b := int64(0); b < store.NumBlocks(); b++ {
		_ = store.WriteBlock(b, junk)
	}
	if _, err := Recover(store, bytes.NewReader(backup.Bytes())); err != nil {
		t.Fatal(err)
	}
	// A fresh mount of the recovered device sees everything.
	remounted, err := Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, remounted, plain, hidden)
}

func TestRecoverRejectsGarbage(t *testing.T) {
	_, store := newTestFS(t, 2048, 512, nil)
	if _, err := Recover(store, bytes.NewReader([]byte("not a backup at all"))); err == nil {
		t.Fatal("garbage backup should be rejected")
	}
}

func TestRecoverRejectsWrongGeometry(t *testing.T) {
	fs, _, _, _ := buildPopulatedFS(t)
	var backup bytes.Buffer
	if err := fs.Backup(&backup); err != nil {
		t.Fatal(err)
	}
	other, err := vdisk.NewMemStore(1024, 512) // different block count
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(other, bytes.NewReader(backup.Bytes())); err == nil {
		t.Fatal("geometry mismatch should be rejected")
	}
}

func TestMountPersistence(t *testing.T) {
	fs, store := newTestFS(t, 4096, 512, nil)
	s, err := fs.NewSession("u")
	if err != nil {
		t.Fatal(err)
	}
	want := mkPayload(2000, 6)
	if err := s.CreateHidden("persist", []byte("k"), FlagFile, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("plain", mkPayload(500, 7)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fs2.NewSession("u")
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Connect("persist", []byte("k")); err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReadHidden("persist")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mount lost hidden content")
	}
	if _, err := fs2.Read("plain"); err != nil {
		t.Fatal(err)
	}
	if fs2.AbandonedCount() != fs.AbandonedCount() {
		t.Fatal("abandoned count not persisted")
	}
}

func TestMountRejectsForeignVolume(t *testing.T) {
	store, err := vdisk.NewMemStore(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(store); err == nil {
		t.Fatal("unformatted volume should not mount")
	}
}

func TestDummiesChurnBitmap(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, func(p *Params) { p.NDummy = 4; p.DummyAvgSize = 8 * 512 })
	before := fs.Bitmap()
	if err := fs.TickDummies(); err != nil {
		t.Fatal(err)
	}
	after := fs.Bitmap()
	// A dummy tick must change the allocation picture: some blocks newly
	// allocated or newly freed (resampled sizes guarantee it w.h.p.).
	changed := false
	for b := int64(0); b < before.Len(); b++ {
		if before.Test(b) != after.Test(b) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("TickDummies left the bitmap identical — snapshot attack trivial")
	}
	// Churn must not corrupt the dummies themselves.
	if err := fs.TickDummies(); err != nil {
		t.Fatal(err)
	}
	n, err := fs.DummyBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("dummies occupy no blocks")
	}
}

func TestDummiesSurviveUserActivity(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, nil)
	view := fs.NewHiddenView("u")
	for i := 0; i < 5; i++ {
		if err := view.Create(string(rune('a'+i)), mkPayload(5000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.TickDummies(); err != nil {
		t.Fatalf("user activity corrupted dummies: %v", err)
	}
	// And the user's files survive dummy churn.
	for i := 0; i < 5; i++ {
		got, err := view.Read(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, mkPayload(5000, byte(i))) {
			t.Fatalf("file %c corrupted by dummy churn", 'a'+i)
		}
	}
}

func TestAbandonedBlocksCounted(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, func(p *Params) { p.PctAbandoned = 0.05 })
	want := int64(float64(8192-fs.DataStart()) * 0.05)
	if got := fs.AbandonedCount(); got != want {
		t.Fatalf("AbandonedCount = %d, want %d", got, want)
	}
}
