package stegfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"stegfs/internal/fsapi"
)

// TestParallelReadHiddenDistinctObjects: many goroutines read disjoint
// hidden files through one shared cached FS. Run with -race; every read must
// return the exact payload.
func TestParallelReadHiddenDistinctObjects(t *testing.T) {
	fs, _ := newCachedTestFS(t, 16384, 512, 2048)
	view := fs.NewHiddenView("u")
	const files = 8
	const rounds = 6
	payloads := make([][]byte, files)
	for i := 0; i < files; i++ {
		payloads[i] = mkPayload(9000+i*311, byte(i+1))
		if err := view.Create(fmt.Sprintf("f%d", i), payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, files)
	for i := 0; i < files; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", i)
			for r := 0; r < rounds; r++ {
				got, err := view.Read(name)
				if err != nil {
					errs <- fmt.Errorf("%s round %d: %w", name, r, err)
					return
				}
				if !bytes.Equal(got, payloads[i]) {
					errs <- fmt.Errorf("%s round %d: corrupted", name, r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReadWriteRaceSameObject: one writer alternates two same-shape payloads
// while readers hammer the same object. Under the per-object lock every read
// must observe exactly one of the two payloads — never a torn mix.
func TestReadWriteRaceSameObject(t *testing.T) {
	fs, _ := newCachedTestFS(t, 16384, 512, 2048)
	view := fs.NewHiddenView("u")
	a := mkPayload(6000, 0x11)
	b := mkPayload(6000, 0x77)
	if err := view.Create("f", a); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	writeErr := make(chan error, 1)
	go func() {
		defer close(writeErr)
		for i := 0; !stop.Load(); i++ {
			p := a
			if i%2 == 1 {
				p = b
			}
			if err := view.Write("f", p); err != nil {
				writeErr <- err
				return
			}
		}
	}()
	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := view.Read("f")
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, a) && !bytes.Equal(got, b) {
					errs <- errors.New("torn read: payload is neither version")
					return
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	if err := <-writeErr; err != nil {
		t.Fatalf("writer: %v", err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPlainHiddenInterleaving: plain reads/writes and hidden reads/writes
// from separate goroutines share the volume (and its allocation bitmap)
// without corrupting either side. Run with -race.
func TestPlainHiddenInterleaving(t *testing.T) {
	fs, _ := newCachedTestFS(t, 16384, 512, 2048)
	view := fs.NewHiddenView("u")
	if err := view.Create("h", mkPayload(5000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("p", mkPayload(3000, 2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	run := func(fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if err := fn(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	run(func(i int) error { // hidden reader
		got, err := view.Read("h")
		if err == nil && len(got) != 5000 {
			err = fmt.Errorf("hidden read length %d", len(got))
		}
		return err
	})
	run(func(i int) error { // hidden writer (same shape)
		return view.Write("h", mkPayload(5000, byte(10+i)))
	})
	run(func(i int) error { // plain reader
		got, err := fs.Read("p")
		if err == nil && len(got) != 3000 {
			err = fmt.Errorf("plain read length %d", len(got))
		}
		return err
	})
	run(func(i int) error { // plain writer
		return fs.Write("p", mkPayload(3000, byte(50+i)))
	})
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentCreateSameKey: two goroutines race createHidden on the same
// (name, key). Exactly one wins; the loser gets ErrExists and no duplicate
// header is minted (a subsequent read returns the winner's payload intact).
func TestConcurrentCreateSameKey(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, nil)
	pa := mkPayload(4000, 0xAA)
	pb := mkPayload(4000, 0xBB)
	var wg sync.WaitGroup
	results := make([]error, 2)
	for i, p := range [][]byte{pa, pb} {
		wg.Add(1)
		go func(i int, p []byte) {
			defer wg.Done()
			_, results[i] = fs.createHidden("u/race", []byte("k"), FlagFile, p)
		}(i, p)
	}
	wg.Wait()
	var okCount, existsCount int
	for _, err := range results {
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, fsapi.ErrExists):
			existsCount++
		default:
			t.Fatalf("unexpected create error: %v", err)
		}
	}
	if okCount != 1 || existsCount != 1 {
		t.Fatalf("want exactly one winner and one ErrExists, got %d/%d", okCount, existsCount)
	}
	r, err := fs.openShared("u/race", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.readHidden(r)
	fs.release(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pa) && !bytes.Equal(got, pb) {
		t.Fatal("surviving object holds neither racer's payload")
	}
}

// TestBackupQuiescesConcurrentActivity: Backup runs while readers and a
// writer are active; the freeze gate must produce a loadable, self-
// consistent stream.
func TestBackupQuiescesConcurrentActivity(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, nil)
	view := fs.NewHiddenView("u")
	for i := 0; i < 4; i++ {
		if err := view.Create(fmt.Sprintf("f%d", i), mkPayload(3000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if _, err := view.Read(fmt.Sprintf("f%d", i%4)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := view.Write("f0", mkPayload(3000, byte(i))); err != nil {
				errs <- err
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		var img bytes.Buffer
		if err := fs.Backup(&img); err != nil {
			stop.Store(true)
			t.Fatalf("backup under load: %v", err)
		}
		if img.Len() == 0 {
			stop.Store(true)
			t.Fatal("empty backup")
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestVectoredReadMatchesBlockwise: the vectored read path must return
// byte-identical data to a manual block-by-block sealed read of the same
// object.
func TestVectoredReadMatchesBlockwise(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, nil)
	view := fs.NewHiddenView("u")
	want := mkPayload(200*512, 3) // double-indirect territory
	if err := view.Create("big", want); err != nil {
		t.Fatal(err)
	}
	got, err := view.Read("big") // vectored
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("vectored read mismatch")
	}
	// Serial path: walk the cursor, reassembling one block per Step.
	cur, err := view.ReadCursor("big")
	if err != nil {
		t.Fatal(err)
	}
	hc := cur.(*hiddenCursor)
	var serial []byte
	buf := make([]byte, 512)
	for _, b := range hc.blocks {
		if err := hc.io.ReadBlock(b, buf); err != nil {
			t.Fatal(err)
		}
		serial = append(serial, buf...)
	}
	if !bytes.Equal(serial[:len(want)], want) {
		t.Fatal("serial block-by-block read disagrees with vectored path")
	}
}

// TestCreateBackupSyncNoDeadlock is the regression test for the freeze-gate
// lock order: createHidden pre-takes the gate before fs.mu, while
// Backup/Sync take the gate exclusively before fs.mu. Creates, backups and
// syncs race here; any ordering mistake deadlocks and trips the test
// timeout.
func TestCreateBackupSyncNoDeadlock(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, nil)
	view := fs.NewHiddenView("u")
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(1)
	go func() { // creator: every create crosses the gate-while-holding-fs.mu path
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := view.Create(fmt.Sprintf("c%d", i), mkPayload(2000, byte(i))); err != nil {
				errs <- fmt.Errorf("create: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // backup: freeze gate exclusively, then fs.mu
		defer wg.Done()
		for i := 0; i < 6; i++ {
			var img bytes.Buffer
			if err := fs.Backup(&img); err != nil {
				errs <- fmt.Errorf("backup: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // sync: same order as backup
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := fs.Sync(); err != nil {
				errs <- fmt.Errorf("sync: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := view.Read(fmt.Sprintf("c%d", i))
		if err != nil || !bytes.Equal(got, mkPayload(2000, byte(i))) {
			t.Fatalf("c%d corrupted after backup/sync races (%v)", i, err)
		}
	}
}
