package alloc

import (
	"math/rand"
	"testing"

	"stegfs/internal/bitmapvec"
)

// The §3.1 security contract says hidden blocks are drawn uniformly from the
// whole free space, so a bitmap-diff adversary learns nothing from block
// placement. The sharded allocator must therefore be statistically
// indistinguishable from bitmapvec.AllocRandomFree over the whole volume.
// These tests pin that with chi-squared goodness-of-fit (each sampler
// against the exact uniform expectation over the free set) and a two-sample
// homogeneity test (sharded vs single-bitmap histograms against each other).
//
// Procedure: from one fixed bitmap state, draw-and-return single allocations
// many times — Alloc then Free restores the state, so every draw sees the
// same free set and the exact distribution is known (uniform over the free
// blocks). Counts are binned by block number; bins deliberately do NOT align
// with group boundaries (the adversary does not know them), so any
// group-boundary artifact shows up as excess variance across bins.

const (
	uniVolBlocks = 1 << 15
	uniDataStart = 517 // not word-aligned on purpose
	uniBins      = 60  // does not divide the group count
	uniTrials    = 120000
	// Chi-squared critical value for df=59 at p=0.001 is 98.3. A correct
	// sampler lands near df (~59) with overwhelming probability; a sampler
	// with per-group bias of even a few percent blows past 200. Seeds are
	// fixed, so the test is deterministic.
	uniCritical = 98.3
)

// drawHistogram bins `trials` draw-and-return allocations from draw().
func drawHistogram(t *testing.T, trials int, draw func() int64) []int64 {
	t.Helper()
	binSpan := (int64(uniVolBlocks) - uniDataStart + uniBins - 1) / uniBins
	hist := make([]int64, uniBins)
	for i := 0; i < trials; i++ {
		b := draw()
		if b < uniDataStart || b >= uniVolBlocks {
			t.Fatalf("draw %d returned block %d outside the data region", i, b)
		}
		hist[(b-uniDataStart)/binSpan]++
	}
	return hist
}

// chiSquareGoF returns the goodness-of-fit statistic of hist against the
// uniform-over-free expectation for each bin.
func chiSquareGoF(t *testing.T, bm *bitmapvec.Bitmap, hist []int64, trials int) float64 {
	t.Helper()
	binSpan := (int64(uniVolBlocks) - uniDataStart + uniBins - 1) / uniBins
	totalFree := bm.CountFreeInRange(uniDataStart, uniVolBlocks)
	var chi float64
	for i, got := range hist {
		lo := uniDataStart + int64(i)*binSpan
		hi := lo + binSpan
		if hi > uniVolBlocks {
			hi = uniVolBlocks
		}
		expected := float64(trials) * float64(bm.CountFreeInRange(lo, hi)) / float64(totalFree)
		if expected < 5 {
			t.Fatalf("bin %d expected count %.1f too small for chi-squared", i, expected)
		}
		d := float64(got) - expected
		chi += d * d / expected
	}
	return chi
}

func uniBitmap(t *testing.T) *bitmapvec.Bitmap {
	return mkBitmap(t, uniVolBlocks, uniDataStart, 0.35, 99)
}

// TestShardedAllocationUniform: the sharded sampler fits the uniform
// distribution over the free set.
func TestShardedAllocationUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	bm := uniBitmap(t)
	a, err := New(bm, uniDataStart, DefaultGroups, 7)
	if err != nil {
		t.Fatal(err)
	}
	hist := drawHistogram(t, uniTrials, func() int64 {
		b, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		a.Free(b)
		return b
	})
	chi := chiSquareGoF(t, bm, hist, uniTrials)
	t.Logf("sharded sampler: chi²=%.1f over %d bins (critical %.1f)", chi, uniBins, uniCritical)
	if chi > uniCritical {
		t.Fatalf("sharded allocation deviates from uniform: chi²=%.1f > %.1f", chi, uniCritical)
	}
}

// TestSingleBitmapAllocationUniform: the reference whole-volume sampler fits
// the same expectation (calibrates the harness — if this fails the test
// setup, not the allocator, is wrong).
func TestSingleBitmapAllocationUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	bm := uniBitmap(t)
	rng := rand.New(rand.NewSource(8))
	hist := drawHistogram(t, uniTrials, func() int64 {
		b, err := bm.AllocRandomFree(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := bm.Clear(b); err != nil {
			t.Fatal(err)
		}
		return b
	})
	chi := chiSquareGoF(t, bm, hist, uniTrials)
	t.Logf("single-bitmap sampler: chi²=%.1f over %d bins (critical %.1f)", chi, uniBins, uniCritical)
	if chi > uniCritical {
		t.Fatalf("reference sampler deviates from uniform: chi²=%.1f > %.1f", chi, uniCritical)
	}
}

// TestShardedVsSingleBitmapHomogeneity: two-sample chi-squared — the sharded
// and whole-volume histograms are draws from the same distribution.
func TestShardedVsSingleBitmapHomogeneity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	bm := uniBitmap(t)
	a, err := New(bm, uniDataStart, DefaultGroups, 9)
	if err != nil {
		t.Fatal(err)
	}
	sharded := drawHistogram(t, uniTrials, func() int64 {
		b, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		a.Free(b)
		return b
	})
	rng := rand.New(rand.NewSource(10))
	single := drawHistogram(t, uniTrials, func() int64 {
		b, err := bm.AllocRandomFree(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := bm.Clear(b); err != nil {
			t.Fatal(err)
		}
		return b
	})
	// Equal totals, so the homogeneity statistic reduces to
	// sum (o1-o2)² / (o1+o2), chi-squared with df = bins-1.
	var chi float64
	for i := range sharded {
		o1, o2 := float64(sharded[i]), float64(single[i])
		if o1+o2 == 0 {
			continue
		}
		d := o1 - o2
		chi += d * d / (o1 + o2)
	}
	t.Logf("homogeneity: chi²=%.1f over %d bins (critical %.1f)", chi, uniBins, uniCritical)
	if chi > uniCritical {
		t.Fatalf("sharded and single-bitmap samplers distinguishable: chi²=%.1f > %.1f", chi, uniCritical)
	}
}
