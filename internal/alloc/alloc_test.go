package alloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"stegfs/internal/bitmapvec"
)

// mkBitmap builds an n-block bitmap with [0, dataStart) marked as metadata
// and the data region occupied at roughly the given density.
func mkBitmap(t *testing.T, n, dataStart int64, density float64, seed int64) *bitmapvec.Bitmap {
	t.Helper()
	bm := bitmapvec.New(n)
	for i := int64(0); i < dataStart; i++ {
		if err := bm.Set(i); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := dataStart; i < n; i++ {
		if rng.Float64() < density {
			if err := bm.Set(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	return bm
}

func TestGroupPartition(t *testing.T) {
	for _, tc := range []struct {
		n, start int64
		groups   int
	}{
		{1 << 16, 517, 64},
		{1 << 16, 517, 1},
		{4096, 100, 64}, // more groups than the region sustains
		{8192, 8000, 16},
		{1 << 16, 0, 7},
		{200, 130, 4}, // tiny tail region
	} {
		bm := mkBitmap(t, tc.n, tc.start, 0.3, 1)
		a, err := New(bm, tc.start, tc.groups, 1)
		if err != nil {
			t.Fatalf("New(%+v): %v", tc, err)
		}
		// Groups tile [start, n) exactly, word-aligned interior boundaries.
		prev := tc.start
		for i := 0; i < a.Groups(); i++ {
			lo, hi := a.GroupRange(i)
			if lo != prev {
				t.Fatalf("%+v: group %d starts at %d, want %d", tc, i, lo, prev)
			}
			if i > 0 && lo%64 != 0 {
				t.Fatalf("%+v: interior boundary %d not word-aligned", tc, lo)
			}
			if hi <= lo {
				t.Fatalf("%+v: group %d empty [%d,%d)", tc, i, lo, hi)
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("%+v: groups end at %d, want %d", tc, prev, tc.n)
		}
		// GroupOf agrees with the ranges.
		for b := tc.start; b < tc.n; b++ {
			i := a.GroupOf(b)
			lo, hi := a.GroupRange(i)
			if b < lo || b >= hi {
				t.Fatalf("%+v: GroupOf(%d) = %d [%d,%d)", tc, b, i, lo, hi)
			}
		}
		if a.GroupOf(tc.start-1) != -1 && tc.start > 0 {
			t.Fatalf("%+v: metadata block assigned to a group", tc)
		}
		if a.FreeBlocks() != bm.CountFree() {
			t.Fatalf("%+v: FreeBlocks %d != bitmap %d", tc, a.FreeBlocks(), bm.CountFree())
		}
	}
}

func TestAllocFreeTryAlloc(t *testing.T) {
	bm := mkBitmap(t, 8192, 200, 0.5, 2)
	a, err := New(bm, 200, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	free0 := a.FreeBlocks()
	var got []int64
	for i := 0; i < 100; i++ {
		b, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if b < 200 || b >= 8192 {
			t.Fatalf("alloc %d outside data region", b)
		}
		if !a.Test(b) {
			t.Fatalf("allocated block %d not marked", b)
		}
		got = append(got, b)
	}
	if a.FreeBlocks() != free0-100 {
		t.Fatalf("free count %d, want %d", a.FreeBlocks(), free0-100)
	}
	for _, b := range got {
		a.Free(b)
	}
	if a.FreeBlocks() != free0 {
		t.Fatalf("free count after release %d, want %d", a.FreeBlocks(), free0)
	}
	// Double-free is a no-op.
	a.Free(got[0])
	if a.FreeBlocks() != free0 {
		t.Fatal("double free changed the count")
	}
	// TryAlloc claims a free block exactly once.
	b := got[0]
	if !a.TryAlloc(b) {
		t.Fatalf("TryAlloc(%d) on free block failed", b)
	}
	if a.TryAlloc(b) {
		t.Fatalf("TryAlloc(%d) claimed a used block", b)
	}
	if a.TryAlloc(100) {
		t.Fatal("TryAlloc claimed a metadata block")
	}
	if !a.Test(100) {
		t.Fatal("metadata block reported free")
	}
}

func TestAllocExhaustion(t *testing.T) {
	bm := mkBitmap(t, 1024, 100, 0, 3)
	a, err := New(bm, 100, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for {
		b, err := a.Alloc()
		if err != nil {
			if !errors.Is(err, bitmapvec.ErrNoFree) {
				t.Fatalf("exhaustion error = %v, want ErrNoFree", err)
			}
			break
		}
		if seen[b] {
			t.Fatalf("block %d allocated twice", b)
		}
		seen[b] = true
	}
	if int64(len(seen)) != 1024-100 {
		t.Fatalf("allocated %d blocks, want %d", len(seen), 1024-100)
	}
	if a.FreeBlocks() != 0 {
		t.Fatalf("FreeBlocks %d after exhaustion", a.FreeBlocks())
	}
}

func TestSnapshotMatchesState(t *testing.T) {
	bm := mkBitmap(t, 4096, 300, 0.4, 4)
	a, err := New(bm, 300, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := a.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	snap := a.Snapshot()
	if snap.CountFree() != a.FreeBlocks() {
		t.Fatalf("snapshot free %d != allocator %d", snap.CountFree(), a.FreeBlocks())
	}
	raw := a.MarshalBitmap()
	rt, err := bitmapvec.Unmarshal(4096, raw)
	if err != nil {
		t.Fatal(err)
	}
	if rt.CountSet() != snap.CountSet() {
		t.Fatalf("marshal/unmarshal set count %d != snapshot %d", rt.CountSet(), snap.CountSet())
	}
}

func TestConcurrentAllocFreeRaceClean(t *testing.T) {
	bm := mkBitmap(t, 1<<15, 512, 0.2, 5)
	a, err := New(bm, 512, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	free0 := a.FreeBlocks()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			held := make([]int64, 0, 64)
			for i := 0; i < 2000; i++ {
				if len(held) < 32 || a.Intn(2) == 0 {
					b, err := a.Alloc()
					if err != nil {
						continue
					}
					held = append(held, b)
				} else {
					b := held[len(held)-1]
					held = held[:len(held)-1]
					a.Free(b)
					_ = a.Test(b)
				}
			}
			for _, b := range held {
				a.Free(b)
			}
		}(w)
	}
	wg.Wait()
	if a.FreeBlocks() != free0 {
		t.Fatalf("free count drifted: %d -> %d", free0, a.FreeBlocks())
	}
	if snap := a.Snapshot(); snap.CountFree() != free0 {
		t.Fatalf("bitmap free drifted: %d -> %d", free0, snap.CountFree())
	}
}

func TestInt63nUniformBounds(t *testing.T) {
	bm := mkBitmap(t, 256, 64, 0, 6)
	a, err := New(bm, 64, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := a.Int63n(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Int63n(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Int63n(7): value %d drawn %d/70000 times", v, c)
		}
	}
}

// TestFreeBatch: batch frees must be exactly equivalent to per-block frees —
// tolerant of metadata blocks, already-free blocks and duplicates — while
// grouping victims so each touched group is locked once.
func TestFreeBatch(t *testing.T) {
	const n, start = 1 << 14, 517
	bm := mkBitmap(t, n, start, 0, 3)
	a, err := New(bm, start, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	var victims []int64
	for i := 0; i < 900; i++ {
		b, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, b)
	}
	extra := a.FreeBlocks()
	// Salt the batch with junk: metadata blocks, never-allocated blocks and
	// duplicates of real victims.
	batch := append([]int64(nil), victims...)
	batch = append(batch, 0, 5, start-1, victims[0], victims[13], n-1)
	a.FreeBatch(batch)
	if got := a.FreeBlocks(); got != extra+900 {
		t.Fatalf("free count after batch = %d, want %d", got, extra+900)
	}
	for _, b := range victims {
		if a.Test(b) {
			t.Fatalf("block %d still allocated after FreeBatch", b)
		}
	}
	// Per-group counters balance: every alloc was undone by exactly one free.
	tot := a.Stats().Totals()
	if tot.Allocs != 900 || tot.Frees != 900 {
		t.Fatalf("stats allocs/frees = %d/%d, want 900/900", tot.Allocs, tot.Frees)
	}
	// Idempotent: a second identical batch is a no-op.
	a.FreeBatch(batch)
	if got := a.FreeBlocks(); got != extra+900 {
		t.Fatalf("double FreeBatch changed free count to %d", got)
	}
}

// TestFreeBatchConcurrent: concurrent batch frees and allocations must never
// corrupt the free counts; run with -race.
func TestFreeBatchConcurrent(t *testing.T) {
	const n, start = 1 << 14, 512
	bm := mkBitmap(t, n, start, 0, 7)
	a, err := New(bm, start, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	free0 := a.FreeBlocks()
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				var mine []int64
				for i := 0; i < 40; i++ {
					b, err := a.Alloc()
					if err != nil {
						break
					}
					mine = append(mine, b)
				}
				a.FreeBatch(mine)
			}
		}()
	}
	wg.Wait()
	if got := a.FreeBlocks(); got != free0 {
		t.Fatalf("free count drifted: %d -> %d", free0, got)
	}
	if got := bm.CountFree(); got != free0 {
		t.Fatalf("bitmap free count drifted: %d -> %d", free0, got)
	}
	tot := a.Stats().Totals()
	if tot.Allocs != tot.Frees {
		t.Fatalf("stats allocs %d != frees %d after balanced churn", tot.Allocs, tot.Frees)
	}
}

// TestStatsSkew: the free-weighted draw spreads allocations across groups;
// the skew report must reflect a roughly even spread on a uniform volume.
func TestStatsSkew(t *testing.T) {
	const n, start = 1 << 15, 512
	bm := mkBitmap(t, n, start, 0, 11)
	a, err := New(bm, start, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3200; i++ {
		if _, err := a.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if len(st.Groups) != a.Groups() {
		t.Fatalf("stats groups = %d, want %d", len(st.Groups), a.Groups())
	}
	min, max, mean := st.AllocSkew()
	if mean == 0 {
		t.Fatal("no allocations recorded")
	}
	// 3200 draws over 16 groups: expectation 200/group; a 3x min/max band is
	// far looser than the binomial spread ever gets.
	if min < 100 || max > 400 {
		t.Fatalf("allocation skew out of band: min=%d mean=%.1f max=%d", min, mean, max)
	}
}
