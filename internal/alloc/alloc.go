// Package alloc implements the sharded block allocator: the volume's data
// region is partitioned into G allocation groups, each with its own mutex,
// live free count and PRNG, laid over the *same* on-disk bitmap
// (bitmapvec.Marshal/Unmarshal are unchanged, so the format is untouched and
// the grouping is invisible on disk). Writers to distinct hidden objects —
// or plain files — contend only when their allocations land in the same
// group, instead of serializing on one volume-wide allocation mutex.
//
// The steganographic contract of the paper's §3.1 — hidden blocks are drawn
// uniformly from the whole free space, so a bitmap-diff adversary learns
// nothing from block placement — survives the sharding because Alloc does
// two-level sampling: it first picks a group weighted by that group's live
// free count, then samples uniformly inside the group. For a volume with
// free counts f_1..f_G summing to F, a free block b in group g is returned
// with probability (f_g/F) * (1/f_g) = 1/F — exactly the distribution of
// bitmapvec.AllocRandomFree over the whole volume. The chi-squared test in
// alloc_test.go and the group-boundary test in internal/adversary pin this
// equivalence statistically.
//
// Locking: each group's mutex guards only that group's range of the bitmap
// (group boundaries are multiples of 64 blocks, so groups never share a
// bitmap word; the shared set-count is atomic — see bitmapvec.Bitmap).
// Whole-bitmap operations (Snapshot, MarshalBitmap) quiesce all groups by
// taking every group mutex in ascending order. Group mutexes are leaves in
// the callers' lock hierarchies: no other lock is ever acquired while one is
// held.
package alloc

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"stegfs/internal/bitmapvec"
)

// DefaultGroups is the default number of allocation groups. High enough
// that a few dozen concurrent writers rarely collide, low enough that
// per-group state stays trivial on small volumes (groups shrink further when
// the data region cannot sustain this many 64-block-aligned groups).
const DefaultGroups = 64

// minGroupBlocks is the smallest group span worth its own mutex; group
// boundaries must be multiples of 64 anyway (one bitmap word).
const minGroupBlocks = 64

// Allocator is the sharded allocator over one shared bitmap. Blocks below
// the data start (file-system metadata: superblock, bitmap region, central
// directory) are permanently allocated and outside every group.
type Allocator struct {
	bm    *bitmapvec.Bitmap
	start int64 // first group-managed block (the volume's data start)
	n     int64 // bm.Len()
	base  int64 // start rounded down to a word boundary (group-0 origin)
	glen  int64 // nominal group span in blocks, a multiple of 64

	groups []group

	// state drives the lock-free auxiliary randomness (group selection and
	// the misc Intn/Int63 helpers): an atomic splitmix64 counter, so callers
	// need no lock to draw and single-threaded runs stay deterministic for a
	// given seed.
	state atomic.Uint64
}

type group struct {
	lo, hi int64        // block range [lo, hi), hi-exclusive
	free   atomic.Int64 // live free count, readable without the lock
	// Guards the bitmap words of [lo, hi) and rng. Group locks are leaves of
	// the volume hierarchy; lockAll sweeps them in ascending index order,
	// which is the one audited self-nesting (the `multi` flag).
	//
	// lockcheck:level 50 volume/group multi
	mu sync.Mutex
	// lockcheck:guardedby mu
	rng *rand.Rand

	// Contention/throughput counters, exported via Allocator.Stats so the
	// bench harness can report group skew. Updated atomically; never reset.
	allocs    atomic.Int64 // blocks claimed in this group (Alloc + TryAlloc)
	frees     atomic.Int64 // blocks returned to this group
	locks     atomic.Int64 // counted lock acquisitions (alloc/free/probe)
	contended atomic.Int64 // of those, how many found the mutex held
}

// lock takes the group mutex, counting the acquisition — and whether it was
// contended — so Contended/Locks is a well-formed ratio over the same event
// set. TryLock+Lock costs one extra atomic on the uncontended fast path —
// noise next to the bitmap scan under the lock.
//
// lockcheck:acquire volume/group
func (g *group) lock() {
	g.locks.Add(1)
	if g.mu.TryLock() {
		return
	}
	g.contended.Add(1)
	g.mu.Lock()
}

// New builds an allocator with up to numGroups groups over [dataStart,
// bm.Len()). numGroups <= 0 selects DefaultGroups. The group count is
// reduced when the data region is too small to give every group at least one
// bitmap word. The caller must have finished all single-threaded bitmap
// setup (metadata marking, mount-time Unmarshal) before New; afterwards all
// mutations of [dataStart, n) must go through the allocator.
func New(bm *bitmapvec.Bitmap, dataStart int64, numGroups int, seed int64) (*Allocator, error) {
	n := bm.Len()
	if dataStart < 0 || dataStart > n {
		return nil, fmt.Errorf("alloc: data start %d outside volume [0,%d]", dataStart, n)
	}
	if numGroups <= 0 {
		numGroups = DefaultGroups
	}
	// Word-aligned interior boundaries: every group except the first starts
	// at a multiple of 64, so no two groups share a bitmap word. (The first
	// group's word may straddle the metadata boundary; metadata bits never
	// change after format, so the sharing is harmless.) The group span is
	// derived first and the count re-derived from it, so the groups tile
	// [base, n) exactly — no empty trailing groups.
	base := dataStart &^ 63
	span := n - base
	glen := (span/int64(numGroups) + 63) &^ 63
	if glen < minGroupBlocks {
		glen = minGroupBlocks
	}
	numGroups = int((span + glen - 1) / glen)
	if numGroups < 1 {
		numGroups = 1
	}
	a := &Allocator{bm: bm, start: dataStart, n: n, base: base, glen: glen, groups: make([]group, numGroups)}
	a.state.Store(splitmix64(uint64(seed)) | 1)
	for i := range a.groups {
		g := &a.groups[i]
		g.lo = base + int64(i)*glen
		g.hi = g.lo + glen
		if i == 0 {
			g.lo = dataStart
		}
		if g.hi > n || i == numGroups-1 {
			g.hi = n
		}
		g.free.Store(bm.CountFreeInRange(g.lo, g.hi))
		g.rng = rand.New(rand.NewSource(seed + int64(i)*0x9E37))
	}
	return a, nil
}

// splitmix64 is the finalizer of the SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Uint64 returns the next value of the lock-free auxiliary generator.
func (a *Allocator) Uint64() uint64 { return splitmix64(a.state.Add(0x9E3779B97F4A7C15)) }

// Int63 returns a non-negative random int64 from the auxiliary generator.
func (a *Allocator) Int63() int64 { return int64(a.Uint64() >> 1) }

// Int63n returns a uniform value in [0, n) from the auxiliary generator.
// It panics when n <= 0, matching math/rand.
func (a *Allocator) Int63n(n int64) int64 {
	if n <= 0 {
		panic("alloc: Int63n with n <= 0")
	}
	// Rejection below the largest multiple of n keeps the draw exactly
	// uniform (a plain modulo would bias low values).
	max := (1 << 63) - 1 - ((1<<63)-1)%uint64(n) // nolint: last acceptable value + 1 window
	for {
		v := a.Uint64() >> 1
		if v < max {
			return int64(v % uint64(n))
		}
	}
}

// Intn returns a uniform value in [0, n) from the auxiliary generator.
func (a *Allocator) Intn(n int) int { return int(a.Int63n(int64(n))) }

// Groups returns the number of allocation groups.
func (a *Allocator) Groups() int { return len(a.groups) }

// GroupRange returns the block range [lo, hi) of group i.
func (a *Allocator) GroupRange(i int) (lo, hi int64) {
	return a.groups[i].lo, a.groups[i].hi
}

// GroupOf returns the index of the group owning block b, or -1 for metadata
// blocks below the data start.
func (a *Allocator) GroupOf(b int64) int {
	if b < a.start || b >= a.n {
		return -1
	}
	i := int((b - a.base) / a.glen)
	if i >= len(a.groups) {
		i = len(a.groups) - 1 // the last group absorbs the tail past n&^63
	}
	return i
}

// FreeBlocks returns the volume's live free-block count (the sum of the
// groups' counts; metadata blocks are never free).
func (a *Allocator) FreeBlocks() int64 {
	var total int64
	for i := range a.groups {
		total += a.groups[i].free.Load()
	}
	return total
}

// Alloc marks and returns a block drawn uniformly from the volume's free
// space: a group is picked with probability proportional to its live free
// count, then a uniform free block of that group is taken under the group's
// lock. It returns bitmapvec.ErrNoFree when the volume is full.
func (a *Allocator) Alloc() (int64, error) {
	// Under concurrency the weights shift while we walk them, so a chosen
	// group can be empty by the time its lock is taken (or the stale sum can
	// leave k past the end of the walk). Retrying the whole weighted draw
	// keeps every successful allocation on the free-weighted path, so
	// placement stays uniform even when writers contend; the bound is
	// generous enough that falling out of the loop means either the volume
	// is exhausted or an adversarially timed churn kept draining exactly the
	// chosen group hundreds of times in a row.
	for attempt := 0; attempt < 256; attempt++ {
		total := a.FreeBlocks()
		if total == 0 {
			break
		}
		k := a.Int63n(total)
		for i := range a.groups {
			g := &a.groups[i]
			f := g.free.Load()
			if k >= f {
				k -= f
				continue
			}
			if b, err := a.allocIn(g); err == nil {
				return b, nil
			}
			break // group drained between the load and the lock; re-weigh
		}
	}
	// Last resort: a locked sweep from a random origin. Its real purpose is
	// to prove ErrNoFree — a transiently-zero sum must not fail a caller
	// racing a Free — and the random origin keeps even this path free of
	// fixed positional bias on the (pathological) chance it ever allocates.
	start := a.Intn(len(a.groups))
	for k := range a.groups {
		if b, err := a.allocIn(&a.groups[(start+k)%len(a.groups)]); err == nil {
			return b, nil
		}
	}
	return 0, bitmapvec.ErrNoFree
}

// allocIn takes one uniform free block of g under its lock.
func (a *Allocator) allocIn(g *group) (int64, error) {
	g.lock()
	defer g.mu.Unlock()
	b, err := a.bm.AllocRandomFreeInRange(g.rng, g.lo, g.hi)
	if err != nil {
		return 0, err
	}
	g.free.Add(-1)
	g.allocs.Add(1)
	return b, nil
}

// Free returns block b to the free space. Freeing a metadata block or an
// already-free block is a no-op, mirroring the tolerant bitmap Clear the
// callers used before sharding.
func (a *Allocator) Free(b int64) {
	i := a.GroupOf(b)
	if i < 0 {
		return
	}
	g := &a.groups[i]
	g.lock()
	defer g.mu.Unlock()
	if a.bm.Test(b) {
		_ = a.bm.Clear(b)
		g.free.Add(1)
		g.frees.Add(1)
	}
}

// FreeBatch returns a set of blocks to the free space: victims are sorted by
// block number — which groups them by allocation group, since groups are
// contiguous ranges — and each group's blocks are cleared under ONE lock
// hold, so a large delete pays one acquisition per touched group instead of
// one per block. Metadata blocks and already-free blocks are skipped with
// the same tolerance as Free; duplicates collapse to one clear.
func (a *Allocator) FreeBatch(blocks []int64) {
	switch len(blocks) {
	case 0:
		return
	case 1:
		a.Free(blocks[0])
		return
	}
	sorted := append(make([]int64, 0, len(blocks)), blocks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 0; i < len(sorted); {
		gi := a.GroupOf(sorted[i])
		if gi < 0 {
			i++
			continue
		}
		g := &a.groups[gi]
		j := i
		var freed int64
		g.lock()
		for ; j < len(sorted) && sorted[j] < g.hi; j++ {
			b := sorted[j]
			if b >= g.lo && a.bm.Test(b) {
				_ = a.bm.Clear(b)
				freed++
			}
		}
		g.free.Add(freed)
		g.frees.Add(freed)
		g.mu.Unlock()
		i = j
	}
}

// Test reports whether block b is currently allocated. Metadata blocks
// (below the data start) are always allocated — they are marked at format
// time and never freed — and are answered without touching the bitmap, so
// the word a group shares with the metadata region is only ever read under
// that group's lock.
func (a *Allocator) Test(b int64) bool {
	i := a.GroupOf(b)
	if i < 0 {
		return b >= 0 && b < a.n
	}
	g := &a.groups[i]
	g.lock()
	defer g.mu.Unlock()
	return a.bm.Test(b)
}

// TryAlloc atomically claims block b if it is free: the test-and-set the
// header-creation probe needs (the first free candidate on the pseudorandom
// chain becomes the header block). It reports whether the claim succeeded;
// metadata blocks are never claimable.
func (a *Allocator) TryAlloc(b int64) bool {
	i := a.GroupOf(b)
	if i < 0 {
		return false
	}
	g := &a.groups[i]
	g.lock()
	defer g.mu.Unlock()
	if a.bm.Test(b) {
		return false
	}
	if err := a.bm.Set(b); err != nil {
		return false
	}
	g.free.Add(-1)
	g.allocs.Add(1)
	return true
}

// lockAll takes every group mutex in ascending order; unlockAll releases
// them. Between the two calls no group can allocate or free, so the bitmap
// is frozen.
//
// lockcheck:acquire volume/group
func (a *Allocator) lockAll() {
	for i := range a.groups {
		a.groups[i].mu.Lock()
	}
}

// lockcheck:release volume/group
func (a *Allocator) unlockAll() {
	for i := len(a.groups) - 1; i >= 0; i-- {
		a.groups[i].mu.Unlock()
	}
}

// Snapshot returns a deep copy of the bitmap taken with all groups
// quiesced — the consistent image the adversary tooling and Backup diff.
func (a *Allocator) Snapshot() *bitmapvec.Bitmap {
	a.lockAll()
	defer a.unlockAll()
	return a.bm.Clone()
}

// MarshalBitmap serializes the bitmap with all groups quiesced. Sync writes
// the result to the device after flushing data blocks, so the on-device
// bitmap never references torn allocation state.
func (a *Allocator) MarshalBitmap() []byte {
	a.lockAll()
	defer a.unlockAll()
	return a.bm.Marshal()
}

// GroupStats are one group's accumulated counters (see Stats).
type GroupStats struct {
	Allocs    int64 // blocks claimed in this group (Alloc + TryAlloc)
	Frees     int64 // blocks returned to this group (Free + FreeBatch)
	Locks     int64 // counted lock acquisitions (alloc, free, bit probes)
	Contended int64 // of Locks, how many found the group mutex held
}

// Stats is a point-in-time snapshot of every group's counters. The bench
// harness prints it so the A6/A7 concurrency sweeps can report allocation
// skew and lock contention across groups.
type Stats struct {
	Groups []GroupStats
}

// Totals sums the per-group counters.
func (s Stats) Totals() GroupStats {
	var t GroupStats
	for _, g := range s.Groups {
		t.Allocs += g.Allocs
		t.Frees += g.Frees
		t.Locks += g.Locks
		t.Contended += g.Contended
	}
	return t
}

// AllocSkew returns the min and max per-group allocation counts and their
// mean — a quick read on whether the free-weighted group draw spread load
// evenly.
func (s Stats) AllocSkew() (min, max int64, mean float64) {
	if len(s.Groups) == 0 {
		return 0, 0, 0
	}
	min = s.Groups[0].Allocs
	var sum int64
	for _, g := range s.Groups {
		if g.Allocs < min {
			min = g.Allocs
		}
		if g.Allocs > max {
			max = g.Allocs
		}
		sum += g.Allocs
	}
	return min, max, float64(sum) / float64(len(s.Groups))
}

// Stats snapshots the per-group contention and throughput counters. The
// counters are atomics, so the snapshot needs no locks and never perturbs
// running allocators.
func (a *Allocator) Stats() Stats {
	out := Stats{Groups: make([]GroupStats, len(a.groups))}
	for i := range a.groups {
		g := &a.groups[i]
		out.Groups[i] = GroupStats{
			Allocs:    g.allocs.Load(),
			Frees:     g.frees.Load(),
			Locks:     g.locks.Load(),
			Contended: g.contended.Load(),
		}
	}
	return out
}
