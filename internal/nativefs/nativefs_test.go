package nativefs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"stegfs/internal/fsapi"
	"stegfs/internal/vdisk"
)

func newNative(t *testing.T, clean bool, numBlocks int64, bs int) (*FS, *vdisk.MemStore) {
	t.Helper()
	store, err := vdisk.NewMemStore(numBlocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(store, clean, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fs, store
}

func mk(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag + byte(i%251)
	}
	return out
}

func TestCleanDiskRoundTrip(t *testing.T) {
	fs, _ := newNative(t, true, 4096, 512)
	if fs.SchemeName() != "CleanDisk" {
		t.Fatalf("scheme = %s", fs.SchemeName())
	}
	want := mk(10_000, 1)
	if err := fs.Create("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestFragDiskRoundTrip(t *testing.T) {
	fs, _ := newNative(t, false, 4096, 512)
	if fs.SchemeName() != "FragDisk" {
		t.Fatalf("scheme = %s", fs.SchemeName())
	}
	want := mk(30_000, 2)
	if err := fs.Create("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestPersistenceAcrossMount(t *testing.T) {
	fs, store := newNative(t, true, 4096, 512)
	want := mk(5_000, 3)
	if err := fs.Create("persist", want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(store, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.SchemeName() != "CleanDisk" {
		t.Fatalf("mounted scheme = %s", fs2.SchemeName())
	}
	got, err := fs2.Read("persist")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mount lost content")
	}
	// Allocations from the remounted bitmap must not collide with the
	// persisted file.
	if err := fs2.Create("more", mk(5_000, 4)); err != nil {
		t.Fatal(err)
	}
	got, _ = fs2.Read("persist")
	if !bytes.Equal(got, want) {
		t.Fatal("new allocation clobbered persisted file")
	}
}

func TestMountRejectsForeign(t *testing.T) {
	store, _ := vdisk.NewMemStore(128, 512)
	if _, err := Mount(store, 1); err == nil {
		t.Fatal("unformatted volume should not mount")
	}
}

func TestCleanVsFragLayout(t *testing.T) {
	span := func(clean bool) int64 {
		fs, _ := newNative(t, clean, 8192, 512)
		if err := fs.Create("f", mk(512*32, 1)); err != nil {
			t.Fatal(err)
		}
		refs, err := fs.vol.ReferencedBlocks()
		if err != nil {
			t.Fatal(err)
		}
		var min, max int64 = 1 << 62, 0
		for b := range refs {
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		return max - min
	}
	cleanSpan := span(true)
	fragSpan := span(false)
	if cleanSpan >= fragSpan {
		t.Fatalf("CleanDisk span %d should be tighter than FragDisk span %d", cleanSpan, fragSpan)
	}
}

func TestSequentialAdvantage(t *testing.T) {
	// The defining property of the baselines: serial reads on CleanDisk are
	// much cheaper than on FragDisk (simulated time).
	cost := func(clean bool) int64 {
		store, _ := vdisk.NewMemStore(8192, 512)
		disk := vdisk.NewDisk(store, vdisk.DefaultGeometry())
		fs, err := Format(disk, clean, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Create("f", mk(512*64, 1)); err != nil {
			t.Fatal(err)
		}
		disk.ResetClock()
		if _, err := fs.Read("f"); err != nil {
			t.Fatal(err)
		}
		return int64(disk.Elapsed())
	}
	clean, frag := cost(true), cost(false)
	if clean >= frag {
		t.Fatalf("CleanDisk read (%d) should beat FragDisk (%d)", clean, frag)
	}
}

func TestDeleteAndNoSpace(t *testing.T) {
	fs, _ := newNative(t, true, 256, 512)
	if err := fs.Create("f", mk(512*16, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("g", mk(512*1000, 1)); !errors.Is(err, fsapi.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("f"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("deleted file still stats")
	}
}

func TestCursorsWork(t *testing.T) {
	for _, clean := range []bool{true, false} {
		fs, _ := newNative(t, clean, 4096, 512)
		want := mk(512*9, 5)
		if err := fs.Create("f", want); err != nil {
			t.Fatal(err)
		}
		rc, err := fs.ReadCursor("f")
		if err != nil {
			t.Fatal(err)
		}
		if steps, err := fsapi.Drain(rc); err != nil || steps != 9 {
			t.Fatalf("clean=%v: steps=%d err=%v", clean, steps, err)
		}
		wc, err := fs.WriteCursor("f", mk(512*9, 6))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fsapi.Drain(wc); err != nil {
			t.Fatal(err)
		}
		got, _ := fs.Read("f")
		if !bytes.Equal(got, mk(512*9, 6)) {
			t.Fatalf("clean=%v cursor write mismatch", clean)
		}
	}
}

func TestManyFiles(t *testing.T) {
	fs, _ := newNative(t, false, 8192, 512)
	ref := map[string][]byte{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("f%02d", i)
		ref[name] = mk(1000+i*300, byte(i))
		if err := fs.Create(name, ref[name]); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range ref {
		got, err := fs.Read(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s mismatch (%v)", name, err)
		}
	}
}
