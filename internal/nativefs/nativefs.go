// Package nativefs provides the two native-file-system baselines of the
// paper's evaluation (Table 4):
//
//   - CleanDisk — a freshly defragmented volume where every file occupies
//     contiguous blocks; the best case any protection scheme can aim for.
//   - FragDisk — a well-used volume where each file is broken into
//     fragments of 8 blocks scattered across the disk.
//
// Both are complete standalone file systems (superblock, persisted
// allocation bitmap, central directory of inodes) built on plainfs with the
// corresponding allocation policy.
package nativefs

import (
	"encoding/binary"
	"fmt"

	"stegfs/internal/bitmapvec"
	"stegfs/internal/fsapi"
	"stegfs/internal/plainfs"
	"stegfs/internal/vdisk"
)

// magic identifies a nativefs superblock.
const magic = "NATIVE01"

// FragBlocks is the fragment length of the FragDisk baseline (paper §5.1).
const FragBlocks = 8

// FS is a mounted native volume.
type FS struct {
	dev     vdisk.Device
	vol     *plainfs.Volume
	bm      *bitmapvec.Bitmap
	name    string
	bmStart int64
	bmLen   int64
}

// layout computes the on-volume region boundaries.
func layout(dev vdisk.Device, maxFiles int) (bmStart, bmLen, inoStart, inoLen, dataStart int64) {
	bs := int64(dev.BlockSize())
	bmStart = 1
	bmLen = (int64(bitmapvec.MarshaledLen(dev.NumBlocks())) + bs - 1) / bs
	inoStart = bmStart + bmLen
	inoLen = plainfs.InodeBlocksFor(dev, maxFiles)
	dataStart = inoStart + inoLen
	return
}

// Format initializes dev as a native volume and mounts it. clean selects the
// CleanDisk (contiguous) layout; otherwise FragDisk (8-block fragments).
func Format(dev vdisk.Device, clean bool, maxFiles int, seed int64) (*FS, error) {
	_, _, inoStart, inoLen, dataStart := layout(dev, maxFiles)
	if dataStart >= dev.NumBlocks() {
		return nil, fmt.Errorf("nativefs: volume too small (%d blocks, metadata needs %d)", dev.NumBlocks(), dataStart)
	}
	bm := bitmapvec.New(dev.NumBlocks())
	for i := int64(0); i < dataStart; i++ {
		if err := bm.Set(i); err != nil {
			return nil, err
		}
	}
	// Zero the inode region so mounts see empty slots.
	zero := make([]byte, dev.BlockSize())
	for b := inoStart; b < inoStart+inoLen; b++ {
		if err := dev.WriteBlock(b, zero); err != nil {
			return nil, err
		}
	}
	fs, err := mountPrepared(dev, bm, clean, maxFiles, seed)
	if err != nil {
		return nil, err
	}
	if err := fs.writeSuper(clean, maxFiles); err != nil {
		return nil, err
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return fs, nil
}

// writeSuper serializes the superblock into block 0.
func (f *FS) writeSuper(clean bool, maxFiles int) error {
	buf := make([]byte, f.dev.BlockSize())
	copy(buf, magic)
	if clean {
		buf[8] = 1
	}
	binary.BigEndian.PutUint64(buf[9:], uint64(maxFiles))
	return f.dev.WriteBlock(0, buf)
}

// Mount opens an already-formatted native volume.
func Mount(dev vdisk.Device, seed int64) (*FS, error) {
	buf := make([]byte, dev.BlockSize())
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, err
	}
	if string(buf[:8]) != magic {
		return nil, fmt.Errorf("nativefs: bad superblock magic %q", buf[:8])
	}
	clean := buf[8] == 1
	maxFiles := int(binary.BigEndian.Uint64(buf[9:]))
	bmStart, bmLen, _, _, _ := layout(dev, maxFiles)
	raw := make([]byte, bmLen*int64(dev.BlockSize()))
	for i := int64(0); i < bmLen; i++ {
		if err := dev.ReadBlock(bmStart+i, raw[i*int64(dev.BlockSize()):(i+1)*int64(dev.BlockSize())]); err != nil {
			return nil, err
		}
	}
	bm, err := bitmapvec.Unmarshal(dev.NumBlocks(), raw)
	if err != nil {
		return nil, err
	}
	return mountPrepared(dev, bm, clean, maxFiles, seed)
}

// mountPrepared wires up the plainfs volume over an in-memory bitmap.
func mountPrepared(dev vdisk.Device, bm *bitmapvec.Bitmap, clean bool, maxFiles int, seed int64) (*FS, error) {
	bmStart, bmLen, inoStart, inoLen, dataStart := layout(dev, maxFiles)
	cfg := plainfs.Config{Policy: plainfs.Fragmented, FragBlocks: FragBlocks, MaxFiles: maxFiles, Seed: seed}
	name := "FragDisk"
	if clean {
		cfg.Policy = plainfs.Contiguous
		name = "CleanDisk"
	}
	vol, err := plainfs.NewEmbedded(dev, bm, inoStart, inoLen, dataStart, cfg)
	if err != nil {
		return nil, err
	}
	return &FS{dev: dev, vol: vol, bm: bm, name: name, bmStart: bmStart, bmLen: bmLen}, nil
}

// Sync persists the allocation bitmap to its on-volume region.
func (f *FS) Sync() error {
	raw := f.bm.Marshal()
	bs := f.dev.BlockSize()
	buf := make([]byte, bs)
	for i := int64(0); i < f.bmLen; i++ {
		for j := range buf {
			buf[j] = 0
		}
		off := i * int64(bs)
		if off < int64(len(raw)) {
			copy(buf, raw[off:])
		}
		if err := f.dev.WriteBlock(f.bmStart+i, buf); err != nil {
			return err
		}
	}
	return nil
}

// SchemeName implements fsapi.FileSystem.
func (f *FS) SchemeName() string { return f.name }

// Create implements fsapi.FileSystem.
func (f *FS) Create(name string, data []byte) error { return f.vol.Create(name, data) }

// Read implements fsapi.FileSystem.
func (f *FS) Read(name string) ([]byte, error) { return f.vol.Read(name) }

// Write implements fsapi.FileSystem.
func (f *FS) Write(name string, data []byte) error { return f.vol.Write(name, data) }

// Delete implements fsapi.FileSystem.
func (f *FS) Delete(name string) error { return f.vol.Delete(name) }

// Stat implements fsapi.FileSystem.
func (f *FS) Stat(name string) (fsapi.FileInfo, error) { return f.vol.Stat(name) }

// ReadCursor implements fsapi.CursorFS.
func (f *FS) ReadCursor(name string) (fsapi.Cursor, error) { return f.vol.ReadCursor(name) }

// WriteCursor implements fsapi.CursorFS.
func (f *FS) WriteCursor(name string, data []byte) (fsapi.Cursor, error) {
	return f.vol.WriteCursor(name, data)
}

// Bitmap exposes the allocation bitmap for inspection in tests.
func (f *FS) Bitmap() *bitmapvec.Bitmap { return f.bm }

var _ fsapi.CursorFS = (*FS)(nil)
