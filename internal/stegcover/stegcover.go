// Package stegcover implements the first steganographic scheme of Anderson,
// Needham and Shamir ("The Steganographic File System", IH'98), the
// StegCover baseline of the paper's evaluation (Table 4).
//
// The volume is initialized with sets of randomly generated cover files. A
// hidden file at security level j within a set is the exclusive-or of the
// first j covers; it is written by adjusting cover j so that the prefix XOR
// equals the file's contents. Reading level j therefore costs j block reads
// per logical block, and writing must additionally re-fix every occupied
// level above j so their prefix XORs are preserved — which is exactly why
// "every file read or write translates into I/O operations on multiple
// cover files" and the scheme's access times are an order of magnitude
// worse than the rest (paper §2, §5.3).
//
// Space accounting matches §5.2: with 2 MB covers and file sizes uniform in
// (1,2] MB, each occupied level is 50–100% utilized, averaging 75%.
package stegcover

import (
	"errors"
	"fmt"
	"sync"

	"stegfs/internal/fsapi"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// Config parameterizes the scheme.
type Config struct {
	// NumCovers is the number of cover files per set. The paper benchmarks
	// the authors' recommended 16.
	NumCovers int
	// CoverBytes is the size of each cover file; it must accommodate the
	// largest hidden file (paper: 2 MB for files in (1,2] MB).
	CoverBytes int64
	// Seed fixes the random cover initialization.
	Seed int64
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{NumCovers: 16, CoverBytes: 2 << 20, Seed: 1}
}

// fileMeta records where a hidden file lives.
type fileMeta struct {
	set   int
	level int // 1-based: file = XOR of covers [0, level)
	size  int64
}

// FS is a mounted StegCover volume.
type FS struct {
	mu          sync.Mutex
	dev         vdisk.Device
	cfg         Config
	coverBlocks int64 // blocks per cover
	numSets     int
	files       map[string]fileMeta
	levelUsed   [][]bool // [set][level-1]
}

// Format initializes dev with random cover files and mounts the scheme.
func Format(dev vdisk.Device, cfg Config) (*FS, error) {
	if cfg.NumCovers <= 0 || cfg.CoverBytes <= 0 {
		return nil, fmt.Errorf("stegcover: invalid config %+v", cfg)
	}
	bs := int64(dev.BlockSize())
	coverBlocks := (cfg.CoverBytes + bs - 1) / bs
	// Block 0 is reserved (parity with the other schemes' superblocks).
	usable := dev.NumBlocks() - 1
	setBlocks := coverBlocks * int64(cfg.NumCovers)
	numSets := int(usable / setBlocks)
	if numSets == 0 {
		return nil, fmt.Errorf("stegcover: volume too small for one set of %d x %d-byte covers", cfg.NumCovers, cfg.CoverBytes)
	}
	fs := &FS{
		dev:         dev,
		cfg:         cfg,
		coverBlocks: coverBlocks,
		numSets:     numSets,
		files:       make(map[string]fileMeta),
		levelUsed:   make([][]bool, numSets),
	}
	for s := range fs.levelUsed {
		fs.levelUsed[s] = make([]bool, cfg.NumCovers)
	}
	// Random patterns into every cover block: the covers ARE the cover
	// story, so they must be indistinguishable from hidden content.
	var seed [8]byte
	seed[0] = byte(cfg.Seed)
	filler := sgcrypto.NewRandomFiller(seed[:])
	buf := make([]byte, dev.BlockSize())
	for b := int64(1); b <= int64(numSets)*setBlocks; b++ {
		filler.Fill(buf)
		if err := dev.WriteBlock(b, buf); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// SchemeName implements fsapi.FileSystem.
func (fs *FS) SchemeName() string { return "StegCover" }

// Capacity returns the number of hidden files the volume can hold (one per
// cover, per set — §2: "it can accommodate as many objects as there are
// cover files").
func (fs *FS) Capacity() int { return fs.numSets * fs.cfg.NumCovers }

// coverBlock returns the physical block holding block idx of cover (set, c).
func (fs *FS) coverBlock(set, c int, idx int64) int64 {
	return 1 + (int64(set)*int64(fs.cfg.NumCovers)+int64(c))*fs.coverBlocks + idx
}

// Create implements fsapi.FileSystem.
func (fs *FS) Create(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("%w: %q", fsapi.ErrExists, name)
	}
	if int64(len(data)) > fs.cfg.CoverBytes {
		return fmt.Errorf("%w: file %d bytes exceeds cover size %d", fsapi.ErrNoSpace, len(data), fs.cfg.CoverBytes)
	}
	set, level := -1, -1
	for s := 0; s < fs.numSets && set < 0; s++ {
		for l := 0; l < fs.cfg.NumCovers; l++ {
			if !fs.levelUsed[s][l] {
				set, level = s, l+1
				break
			}
		}
	}
	if set < 0 {
		return fmt.Errorf("%w: all %d levels occupied", fsapi.ErrNoSpace, fs.Capacity())
	}
	meta := fileMeta{set: set, level: level, size: int64(len(data))}
	if err := fs.writeLevel(meta, data); err != nil {
		return err
	}
	fs.levelUsed[set][level-1] = true
	fs.files[name] = meta
	return nil
}

// writeLevel rewrites the file stored at meta's level with data, preserving
// every other occupied level in the set.
func (fs *FS) writeLevel(meta fileMeta, data []byte) error {
	bs := fs.dev.BlockSize()
	n := (int64(len(data)) + int64(bs) - 1) / int64(bs)
	for idx := int64(0); idx < n; idx++ {
		chunk := make([]byte, bs)
		off := idx * int64(bs)
		if off < int64(len(data)) {
			copy(chunk, data[off:])
		}
		if err := fs.writeLevelBlock(meta.set, meta.level, idx, chunk); err != nil {
			return err
		}
	}
	return nil
}

// writeLevelBlock updates one logical block at a level: it reads every cover
// in the set at that index, recomputes cover `level` so the prefix XOR
// equals want, and re-fixes the covers of occupied higher levels.
func (fs *FS) writeLevelBlock(set, level int, idx int64, want []byte) error {
	k := fs.cfg.NumCovers
	bs := fs.dev.BlockSize()
	covers := make([][]byte, k)
	for c := 0; c < k; c++ {
		covers[c] = make([]byte, bs)
		if err := fs.dev.ReadBlock(fs.coverBlock(set, c, idx), covers[c]); err != nil {
			return err
		}
	}
	// Old prefix XORs: oldPrefix[l] = covers[0] ^ ... ^ covers[l-1].
	oldPrefix := make([][]byte, k+1)
	oldPrefix[0] = make([]byte, bs)
	for l := 1; l <= k; l++ {
		oldPrefix[l] = xor(oldPrefix[l-1], covers[l-1])
	}
	// New cover for this level: prefix(level-1) ^ want.
	newCovers := make([][]byte, k)
	for c := range newCovers {
		newCovers[c] = covers[c]
	}
	newCovers[level-1] = xor(oldPrefix[level-1], want)
	dirty := map[int]bool{level - 1: true}
	// Re-fix occupied higher levels so their contents are unchanged.
	newPrefix := xor(oldPrefix[level-1], newCovers[level-1])
	for l := level + 1; l <= k; l++ {
		if fs.levelUsed[set][l-1] {
			fixed := xor(newPrefix, oldPrefix[l])
			if !equal(fixed, newCovers[l-1]) {
				newCovers[l-1] = fixed
				dirty[l-1] = true
			}
			newPrefix = oldPrefix[l]
		} else {
			newPrefix = xor(newPrefix, newCovers[l-1])
		}
	}
	for c := 0; c < k; c++ {
		if dirty[c] {
			if err := fs.dev.WriteBlock(fs.coverBlock(set, c, idx), newCovers[c]); err != nil {
				return err
			}
		}
	}
	return nil
}

// readLevelBlock reconstructs one logical block: XOR of covers [0, level).
func (fs *FS) readLevelBlock(set, level int, idx int64) ([]byte, error) {
	bs := fs.dev.BlockSize()
	out := make([]byte, bs)
	buf := make([]byte, bs)
	for c := 0; c < level; c++ {
		if err := fs.dev.ReadBlock(fs.coverBlock(set, c, idx), buf); err != nil {
			return nil, err
		}
		for i := range out {
			out[i] ^= buf[i]
		}
	}
	return out, nil
}

// Read implements fsapi.FileSystem.
func (fs *FS) Read(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	bs := int64(fs.dev.BlockSize())
	n := (meta.size + bs - 1) / bs
	out := make([]byte, 0, n*bs)
	for idx := int64(0); idx < n; idx++ {
		blk, err := fs.readLevelBlock(meta.set, meta.level, idx)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out[:meta.size], nil
}

// Write implements fsapi.FileSystem.
func (fs *FS) Write(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	if int64(len(data)) > fs.cfg.CoverBytes {
		return fmt.Errorf("%w: %d bytes exceeds cover size", fsapi.ErrNoSpace, len(data))
	}
	meta.size = int64(len(data))
	if err := fs.writeLevel(meta, data); err != nil {
		return err
	}
	fs.files[name] = meta
	return nil
}

// Delete implements fsapi.FileSystem. The level is released; its cover keeps
// its last contents (which remain indistinguishable from randomness).
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	fs.levelUsed[meta.set][meta.level-1] = false
	delete(fs.files, name)
	return nil
}

// Stat implements fsapi.FileSystem.
func (fs *FS) Stat(name string) (fsapi.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return fsapi.FileInfo{}, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	bs := int64(fs.dev.BlockSize())
	return fsapi.FileInfo{Name: name, Size: meta.size, Blocks: (meta.size + bs - 1) / bs}, nil
}

// SpaceUtilization returns aggregate unique file bytes / volume capacity,
// the §5.2 metric.
func (fs *FS) SpaceUtilization() float64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var sum int64
	for _, m := range fs.files {
		sum += m.size
	}
	return float64(sum) / float64(fs.dev.NumBlocks()*int64(fs.dev.BlockSize()))
}

func xor(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var _ fsapi.FileSystem = (*FS)(nil)

// readCursor steps one logical block (level reads + XOR) per Step.
type readCursor struct {
	fs   *FS
	meta fileMeta
	n    int64
	pos  int64
}

// ReadCursor implements fsapi.CursorFS.
func (fs *FS) ReadCursor(name string) (fsapi.Cursor, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	bs := int64(fs.dev.BlockSize())
	return &readCursor{fs: fs, meta: meta, n: (meta.size + bs - 1) / bs}, nil
}

// Step reconstructs the next logical block.
func (c *readCursor) Step() (bool, error) {
	if c.pos >= c.n {
		return true, errors.New("stegcover: Step past end of cursor")
	}
	c.fs.mu.Lock()
	_, err := c.fs.readLevelBlock(c.meta.set, c.meta.level, c.pos)
	c.fs.mu.Unlock()
	if err != nil {
		return false, err
	}
	c.pos++
	return c.pos == c.n, nil
}

// Remaining returns the logical blocks left.
func (c *readCursor) Remaining() int { return int(c.n - c.pos) }

// writeCursor steps one logical block (read-all + re-fix writes) per Step.
type writeCursor struct {
	fs   *FS
	meta fileMeta
	data []byte
	n    int64
	pos  int64
}

// WriteCursor implements fsapi.CursorFS.
func (fs *FS) WriteCursor(name string, data []byte) (fsapi.Cursor, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	if int64(len(data)) > fs.cfg.CoverBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds cover size", fsapi.ErrNoSpace, len(data))
	}
	meta.size = int64(len(data))
	fs.files[name] = meta
	bs := int64(fs.dev.BlockSize())
	return &writeCursor{fs: fs, meta: meta, data: data, n: (meta.size + bs - 1) / bs}, nil
}

// Step writes the next logical block.
func (c *writeCursor) Step() (bool, error) {
	if c.pos >= c.n {
		return true, errors.New("stegcover: Step past end of cursor")
	}
	bs := c.fs.dev.BlockSize()
	chunk := make([]byte, bs)
	off := c.pos * int64(bs)
	if off < int64(len(c.data)) {
		copy(chunk, c.data[off:])
	}
	c.fs.mu.Lock()
	err := c.fs.writeLevelBlock(c.meta.set, c.meta.level, c.pos, chunk)
	c.fs.mu.Unlock()
	if err != nil {
		return false, err
	}
	c.pos++
	return c.pos == c.n, nil
}

// Remaining returns the logical blocks left.
func (c *writeCursor) Remaining() int { return int(c.n - c.pos) }

var _ fsapi.CursorFS = (*FS)(nil)
