package stegcover

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"stegfs/internal/fsapi"
	"stegfs/internal/vdisk"
)

func newTestFS(t *testing.T, numBlocks int64, bs int, covers int, coverBytes int64) *FS {
	t.Helper()
	store, err := vdisk.NewMemStore(numBlocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(store, Config{NumCovers: covers, CoverBytes: coverBytes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func mk(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag ^ byte(i*7)
	}
	return out
}

func TestRoundTripSingleFile(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 4, 16<<10)
	want := mk(10_000, 1)
	if err := fs.Create("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestMultipleLevelsCoexist(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 4, 16<<10)
	ref := map[string][]byte{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("f%d", i)
		ref[name] = mk(3000+i*500, byte(i))
		if err := fs.Create(name, ref[name]); err != nil {
			t.Fatal(err)
		}
	}
	for name, want := range ref {
		got, err := fs.Read(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s mismatch", name)
		}
	}
}

func TestWritePreservesOtherLevels(t *testing.T) {
	// The scheme's hard case: rewriting a low level must re-fix all higher
	// occupied levels.
	fs := newTestFS(t, 1024, 512, 4, 16<<10)
	a, b, c := mk(4000, 1), mk(4000, 2), mk(4000, 3)
	if err := fs.Create("a", a); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("b", b); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("c", c); err != nil {
		t.Fatal(err)
	}
	a2 := mk(5000, 9)
	if err := fs.Write("a", a2); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		want []byte
	}{{"a", a2}, {"b", b}, {"c", c}} {
		got, err := fs.Read(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Fatalf("%s corrupted by write to lower level", tc.name)
		}
	}
}

func TestCapacityOneFilePerCover(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 4, 16<<10)
	if fs.Capacity() < 4 {
		t.Fatalf("capacity %d < 4", fs.Capacity())
	}
	for i := 0; i < fs.Capacity(); i++ {
		if err := fs.Create(fmt.Sprintf("f%d", i), mk(100, byte(i))); err != nil {
			t.Fatalf("file %d of %d: %v", i, fs.Capacity(), err)
		}
	}
	if err := fs.Create("overflow", mk(100, 0)); !errors.Is(err, fsapi.ErrNoSpace) {
		t.Fatalf("beyond capacity: want ErrNoSpace, got %v", err)
	}
}

func TestDeleteFreesLevel(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 2, 8<<10)
	for i := 0; i < fs.Capacity(); i++ {
		if err := fs.Create(fmt.Sprintf("f%d", i), mk(100, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Delete("f0"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("fresh", mk(200, 7)); err != nil {
		t.Fatalf("freed level not reusable: %v", err)
	}
	got, err := fs.Read("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk(200, 7)) {
		t.Fatal("reused level mismatch")
	}
}

func TestFileTooLargeForCover(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 4, 4<<10)
	if err := fs.Create("big", mk(5<<10, 1)); !errors.Is(err, fsapi.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
}

func TestErrNotFound(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 4, 4<<10)
	if _, err := fs.Read("missing"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("Read missing should be ErrNotFound")
	}
	if err := fs.Write("missing", nil); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("Write missing should be ErrNotFound")
	}
	if err := fs.Delete("missing"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatal("Delete missing should be ErrNotFound")
	}
}

func TestCursorsStepCounts(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 4, 16<<10)
	if err := fs.Create("f", mk(2048, 1)); err != nil {
		t.Fatal(err)
	}
	rc, err := fs.ReadCursor("f")
	if err != nil {
		t.Fatal(err)
	}
	steps, err := fsapi.Drain(rc)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 { // 2048 / 512
		t.Fatalf("read cursor %d steps, want 4", steps)
	}
	wc, err := fs.WriteCursor("f", mk(2048, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.Drain(wc); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk(2048, 8)) {
		t.Fatal("cursor write mismatch")
	}
}

func TestReadCostScalesWithLevel(t *testing.T) {
	// Reading level j costs j device reads per logical block: the source of
	// StegCover's order-of-magnitude penalty.
	store, err := vdisk.NewMemStore(4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	disk := vdisk.NewDisk(store, vdisk.DefaultGeometry())
	fs, err := Format(disk, Config{NumCovers: 8, CoverBytes: 8 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := fs.Create(fmt.Sprintf("f%d", i), mk(4096, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	stats0 := disk.Stats()
	if _, err := fs.Read("f0"); err != nil { // level 1
		t.Fatal(err)
	}
	readsL1 := disk.Stats().Reads - stats0.Reads
	stats0 = disk.Stats()
	if _, err := fs.Read("f3"); err != nil { // level 4
		t.Fatal(err)
	}
	readsL4 := disk.Stats().Reads - stats0.Reads
	if readsL4 != 4*readsL1 {
		t.Fatalf("level-4 read cost %d, want 4x level-1 cost %d", readsL4, readsL1)
	}
}

func TestSpaceUtilizationMetric(t *testing.T) {
	fs := newTestFS(t, 1024, 512, 2, 8<<10)
	if u := fs.SpaceUtilization(); u != 0 {
		t.Fatalf("empty volume utilization %v", u)
	}
	if err := fs.Create("f", mk(8<<10, 1)); err != nil {
		t.Fatal(err)
	}
	u := fs.SpaceUtilization()
	want := float64(8<<10) / float64(1024*512)
	if u != want {
		t.Fatalf("utilization %v, want %v", u, want)
	}
}

// TestPropertyLevelAlgebra: for arbitrary interleavings of creates and
// rewrites across levels, every file reads back its latest contents.
func TestPropertyLevelAlgebra(t *testing.T) {
	f := func(ops []uint16) bool {
		fs := newTestFS(t, 2048, 512, 5, 8<<10)
		ref := map[string][]byte{}
		for j, op := range ops {
			if j >= 12 {
				break
			}
			name := fmt.Sprintf("f%d", int(op)%5)
			data := mk(int(op)%8000+1, byte(j))
			if _, ok := ref[name]; !ok {
				if err := fs.Create(name, data); err != nil {
					return false
				}
			} else {
				if err := fs.Write(name, data); err != nil {
					return false
				}
			}
			ref[name] = data
		}
		for name, want := range ref {
			got, err := fs.Read(name)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
