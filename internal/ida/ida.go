// Package ida implements Rabin's Information Dispersal Algorithm
// ("Efficient dispersal of information for security, load balancing, and
// fault tolerance", JACM 1989 — the paper's reference [15]).
//
// A file is encoded into n shares such that any m of them suffice to
// reconstruct it, with total storage n/m times the original — the scheme
// Hand & Roscoe's Mnemosyne [10] uses in place of naive replication for
// pseudorandom-addressing steganographic storage. The reproduction uses it
// for the resilience-versus-overhead ablation that extends Figure 6.
//
// Encoding multiplies m-byte columns of the input by an n x m Cauchy matrix
// over GF(2^8); any m rows of a Cauchy matrix are invertible, giving the
// any-m-of-n property.
package ida

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"stegfs/internal/gf256"
)

// MaxShares bounds n: the Cauchy construction needs n + m <= 256 distinct
// field elements.
const MaxShares = 128

// shareHdrLen is the per-share header: 8 bytes original length + 4 bytes
// CRC32 (IEEE) of the fragment payload.
const shareHdrLen = 12

// ErrCorruptShare reports a share whose payload fails its integrity check.
// Without the checksum a bit-flipped share decodes to garbage plaintext —
// GF(2^8) reconstruction mixes every share into every output byte.
var ErrCorruptShare = errors.New("ida: share payload corrupt")

// Share is one dispersal fragment.
type Share struct {
	// Index identifies the matrix row used to build this share (0..n-1).
	Index int
	// Data is the fragment: a 12-byte header (original length + payload
	// CRC32) followed by ceil(len(input)/m) payload bytes.
	Data []byte
}

// Params describes an (m, n) dispersal: n shares, any m reconstruct.
type Params struct {
	M int // quorum
	N int // total shares
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.M <= 0 || p.N < p.M {
		return fmt.Errorf("ida: invalid (m=%d, n=%d)", p.M, p.N)
	}
	if p.N+p.M > 2*MaxShares {
		return fmt.Errorf("ida: n=%d exceeds the field (max %d)", p.N, MaxShares)
	}
	return nil
}

// Overhead returns the storage blow-up factor n/m.
func (p Params) Overhead() float64 { return float64(p.N) / float64(p.M) }

// cauchyRow returns row i of the n x m Cauchy matrix: a[i][j] =
// 1 / (x_i + y_j) with x_i = i and y_j = 128 + j (disjoint sets).
func cauchyRow(i, m int) []byte {
	row := make([]byte, m)
	for j := 0; j < m; j++ {
		row[j] = gf256.Inv(gf256.Add(byte(i), byte(128+j)))
	}
	return row
}

// Split encodes data into n shares, any m of which reconstruct it.
func Split(data []byte, p Params) ([]Share, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.M, p.N
	// Pad to a multiple of m; the original length travels in each share.
	cols := (len(data) + m - 1) / m
	padded := make([]byte, cols*m)
	copy(padded, data)

	// De-interleave the m column-byte strides once up front; every share row
	// multiplies against the same views (the previous code rebuilt each
	// stride for each of the n shares, an n*m blow-up in copy traffic).
	strides := make([][]byte, m)
	flat := make([]byte, cols*m)
	for j := 0; j < m; j++ {
		strides[j] = flat[j*cols : (j+1)*cols]
		for c := 0; c < cols; c++ {
			strides[j][c] = padded[c*m+j]
		}
	}

	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		row := cauchyRow(i, m)
		frag := make([]byte, shareHdrLen+cols)
		binary.BigEndian.PutUint64(frag, uint64(len(data)))
		// One fused matrix-row pass; XOR accumulation order does not affect
		// the result, so the share bytes are identical to the sequential
		// per-stride MulSlice formulation.
		gf256.MulAddSlices(row, frag[shareHdrLen:], strides)
		binary.BigEndian.PutUint32(frag[8:], crc32.ChecksumIEEE(frag[shareHdrLen:]))
		shares[i] = Share{Index: i, Data: frag}
	}
	return shares, nil
}

// Reconstruct rebuilds the original data from any m distinct shares.
func Reconstruct(shares []Share, p Params) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := p.M
	if len(shares) < m {
		return nil, fmt.Errorf("ida: %d shares < quorum %d", len(shares), m)
	}
	use := shares[:m]
	cols := len(use[0].Data) - shareHdrLen
	if cols < 0 {
		return nil, fmt.Errorf("ida: share too short")
	}
	origLen := int(binary.BigEndian.Uint64(use[0].Data))
	seen := map[int]bool{}
	for _, s := range use {
		if s.Index < 0 || s.Index >= p.N {
			return nil, fmt.Errorf("ida: share index %d out of range", s.Index)
		}
		if seen[s.Index] {
			return nil, fmt.Errorf("ida: duplicate share index %d", s.Index)
		}
		seen[s.Index] = true
		if len(s.Data)-shareHdrLen != cols {
			return nil, fmt.Errorf("ida: share lengths differ")
		}
		if int(binary.BigEndian.Uint64(s.Data)) != origLen {
			return nil, fmt.Errorf("ida: share headers disagree on length")
		}
		if crc32.ChecksumIEEE(s.Data[shareHdrLen:]) != binary.BigEndian.Uint32(s.Data[8:]) {
			return nil, fmt.Errorf("ida: share %d: %w", s.Index, ErrCorruptShare)
		}
	}
	if origLen > cols*m {
		return nil, fmt.Errorf("ida: header length %d exceeds capacity %d", origLen, cols*m)
	}

	// Invert the m x m submatrix formed by the chosen rows.
	mat := make([][]byte, m)
	for r, s := range use {
		mat[r] = cauchyRow(s.Index, m)
	}
	inv, err := invert(mat)
	if err != nil {
		return nil, err
	}

	// padded column bytes: padded[c*m+j] = sum_k inv[j][k] * share_k[c].
	payloads := make([][]byte, m)
	for k := range use {
		payloads[k] = use[k].Data[shareHdrLen:]
	}
	padded := make([]byte, cols*m)
	acc := make([]byte, cols)
	for j := 0; j < m; j++ {
		clear(acc)
		gf256.MulAddSlices(inv[j], acc, payloads)
		for c := 0; c < cols; c++ {
			padded[c*m+j] = acc[c]
		}
	}
	return padded[:origLen], nil
}

// invert returns the inverse of a square matrix over GF(2^8) via
// Gauss-Jordan elimination.
func invert(mat [][]byte) ([][]byte, error) {
	m := len(mat)
	a := make([][]byte, m)
	inv := make([][]byte, m)
	for i := range mat {
		a[i] = append([]byte(nil), mat[i]...)
		inv[i] = make([]byte, m)
		inv[i][i] = 1
	}
	for col := 0; col < m; col++ {
		pivot := -1
		for r := col; r < m; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("ida: singular matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Normalize the pivot row.
		pinv := gf256.Inv(a[col][col])
		for j := 0; j < m; j++ {
			a[col][j] = gf256.Mul(a[col][j], pinv)
			inv[col][j] = gf256.Mul(inv[col][j], pinv)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < m; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < m; j++ {
				a[r][j] = gf256.Add(a[r][j], gf256.Mul(f, a[col][j]))
				inv[r][j] = gf256.Add(inv[r][j], gf256.Mul(f, inv[col][j]))
			}
		}
	}
	return inv, nil
}
