package ida

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"

	"stegfs/internal/gf256"
)

func mk(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag ^ byte(i*13)
	}
	return out
}

func TestSplitReconstructFirstM(t *testing.T) {
	p := Params{M: 3, N: 7}
	data := mk(1000, 1)
	shares, err := Split(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 7 {
		t.Fatalf("got %d shares", len(shares))
	}
	got, err := Reconstruct(shares[:3], p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("first-m reconstruction failed")
	}
}

func TestReconstructAnySubset(t *testing.T) {
	p := Params{M: 4, N: 10}
	data := mk(2333, 2) // deliberately not a multiple of m
	shares, err := Split(data, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		perm := rng.Perm(10)[:4]
		subset := make([]Share, 4)
		for i, idx := range perm {
			subset[i] = shares[idx]
		}
		got, err := Reconstruct(subset, p)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, perm, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d (%v): mismatch", trial, perm)
		}
	}
}

func TestShareSizesAndOverhead(t *testing.T) {
	p := Params{M: 4, N: 8}
	data := mk(4000, 3)
	shares, err := Split(data, p)
	if err != nil {
		t.Fatal(err)
	}
	perShare := len(shares[0].Data)
	if perShare != 12+1000 { // header (length + CRC) + ceil(4000/4)
		t.Fatalf("share size %d, want 1012", perShare)
	}
	total := perShare * len(shares)
	// Total ~= (n/m) x data (+ headers); for (4,8) that is 2x.
	if float64(total) > 2.1*float64(len(data)) {
		t.Fatalf("overhead %d/%d exceeds n/m", total, len(data))
	}
	if p.Overhead() != 2.0 {
		t.Fatalf("Overhead() = %v", p.Overhead())
	}
}

func TestDegenerateParams(t *testing.T) {
	if _, err := Split(mk(10, 1), Params{M: 0, N: 3}); err == nil {
		t.Fatal("m=0 should fail")
	}
	if _, err := Split(mk(10, 1), Params{M: 4, N: 3}); err == nil {
		t.Fatal("n<m should fail")
	}
	if _, err := Split(mk(10, 1), Params{M: 2, N: 1000}); err == nil {
		t.Fatal("oversized n should fail")
	}
	// m=n=1 degenerates to a copy.
	p := Params{M: 1, N: 1}
	shares, err := Split(mk(100, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(shares, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk(100, 4)) {
		t.Fatal("(1,1) round trip failed")
	}
}

func TestReconstructValidation(t *testing.T) {
	p := Params{M: 3, N: 5}
	data := mk(300, 5)
	shares, _ := Split(data, p)
	if _, err := Reconstruct(shares[:2], p); err == nil {
		t.Fatal("below quorum should fail")
	}
	dup := []Share{shares[0], shares[0], shares[1]}
	if _, err := Reconstruct(dup, p); err == nil {
		t.Fatal("duplicate shares should fail")
	}
	bad := []Share{shares[0], shares[1], {Index: 99, Data: shares[2].Data}}
	if _, err := Reconstruct(bad, p); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	short := []Share{shares[0], shares[1], {Index: 2, Data: shares[2].Data[:10]}}
	if _, err := Reconstruct(short, p); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	p := Params{M: 3, N: 5}
	for _, n := range []int{0, 1, 2, 3, 4} {
		data := mk(n, 7)
		shares, err := Split(data, p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := Reconstruct(shares[1:4], p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

// TestPropertyRoundTrip: any data, any valid (m, n), any m-subset.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(data []byte, mRaw, nRaw, pick uint8) bool {
		m := int(mRaw)%8 + 1
		n := m + int(nRaw)%8
		p := Params{M: m, N: n}
		shares, err := Split(data, p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(pick)))
		perm := rng.Perm(n)[:m]
		subset := make([]Share, m)
		for i, idx := range perm {
			subset[i] = shares[idx]
		}
		got, err := Reconstruct(subset, p)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestLossResilience: exactly the property that motivates IDA over
// replication — losing up to n-m shares is harmless, n-m+1 is fatal.
func TestLossResilience(t *testing.T) {
	p := Params{M: 5, N: 8}
	data := mk(5000, 9)
	shares, _ := Split(data, p)
	// Lose 3 (= n-m): fine.
	got, err := Reconstruct(shares[3:], p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstruction after max loss failed")
	}
	// Lose 4: impossible.
	if _, err := Reconstruct(shares[4:], p); err == nil {
		t.Fatal("reconstruction beyond loss budget should fail")
	}
}

// TestReconstructRejectsCorruptShare: a bit-flipped share must be detected,
// not silently mixed into garbage plaintext (GF(2^8) reconstruction spreads
// a single flipped payload bit across the whole output).
func TestReconstructRejectsCorruptShare(t *testing.T) {
	p := Params{M: 3, N: 5}
	data := mk(500, 9)
	shares, err := Split(data, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{0, 7, 13, 1000} {
		corrupt := make([]Share, 3)
		copy(corrupt, shares[:3])
		flipped := append([]byte(nil), shares[1].Data...)
		off := 12 + bit/8 // flip inside the payload, past the header
		if off >= len(flipped) {
			off = len(flipped) - 1
		}
		flipped[off] ^= 1 << (bit % 8)
		corrupt[1] = Share{Index: shares[1].Index, Data: flipped}
		_, err := Reconstruct(corrupt, p)
		if !errors.Is(err, ErrCorruptShare) {
			t.Fatalf("bit %d: want ErrCorruptShare, got %v", bit, err)
		}
	}
	// A header flip (length word) is caught by the header-agreement check,
	// not the CRC — but it must still fail loudly.
	corrupt := make([]Share, 3)
	copy(corrupt, shares[:3])
	flipped := append([]byte(nil), shares[0].Data...)
	flipped[7] ^= 1
	corrupt[0] = Share{Index: shares[0].Index, Data: flipped}
	if _, err := Reconstruct(corrupt, p); err == nil {
		t.Fatal("corrupted length header accepted")
	}
	// Untouched shares still reconstruct.
	got, err := Reconstruct(shares[:3], p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clean shares failed after corruption trials")
	}
}

// splitReference is the pre-optimization Split encoding loop: per-share
// stride extraction and sequential MulSlice accumulation. The fused path
// must produce byte-identical shares — IDA share bytes are on-disk format.
func splitReference(data []byte, p Params) []Share {
	m, n := p.M, p.N
	cols := (len(data) + m - 1) / m
	padded := make([]byte, cols*m)
	copy(padded, data)
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		row := cauchyRow(i, m)
		frag := make([]byte, shareHdrLen+cols)
		binary.BigEndian.PutUint64(frag, uint64(len(data)))
		out := frag[shareHdrLen:]
		for j := 0; j < m; j++ {
			strideView := make([]byte, cols)
			for c := 0; c < cols; c++ {
				strideView[c] = padded[c*m+j]
			}
			gf256.MulSlice(row[j], out, strideView)
		}
		binary.BigEndian.PutUint32(frag[8:], crc32.ChecksumIEEE(out))
		shares[i] = Share{Index: i, Data: frag}
	}
	return shares
}

// TestSplitSharesByteIdentical pins the fused encoder to the reference
// encoder byte for byte across parameter shapes and lengths, including
// sizes that are not multiples of m and sub-kernel-threshold strides.
func TestSplitSharesByteIdentical(t *testing.T) {
	for _, p := range []Params{{M: 1, N: 1}, {M: 2, N: 3}, {M: 3, N: 5}, {M: 4, N: 7}, {M: 9, N: 17}} {
		for _, sz := range []int{0, 1, 7, 100, 4096, 16384 + 13} {
			data := mk(sz, byte(p.M*31+sz))
			got, err := Split(data, p)
			if err != nil {
				t.Fatal(err)
			}
			want := splitReference(data, p)
			if len(got) != len(want) {
				t.Fatalf("(%d,%d) sz=%d: share count %d != %d", p.M, p.N, sz, len(got), len(want))
			}
			for i := range got {
				if got[i].Index != want[i].Index || !bytes.Equal(got[i].Data, want[i].Data) {
					t.Fatalf("(%d,%d) sz=%d: share %d bytes diverge from reference", p.M, p.N, sz, i)
				}
			}
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	data := mk(64*1024, 7)
	for _, p := range []Params{{M: 3, N: 5}, {M: 8, N: 12}} {
		b.Run(fmt.Sprintf("m=%d,n=%d", p.M, p.N), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := Split(data, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	data := mk(64*1024, 7)
	for _, p := range []Params{{M: 3, N: 5}, {M: 8, N: 12}} {
		shares, err := Split(data, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d,n=%d", p.M, p.N), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := Reconstruct(shares[:p.M], p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
