package bench

import (
	"fmt"

	"stegfs/internal/workload"
)

// Fig7Users are the concurrency levels of Figure 7.
var Fig7Users = []int{1, 2, 4, 8, 16, 32}

// ConcurrencyCurve reproduces Figure 7: read and write access times versus
// the number of concurrent users for all five schemes (1 KB blocks, 1 GB
// volume, (1,2] MB files, interleaved access). It returns one read series
// and one write series per scheme.
func ConcurrencyCurve(cfg Config, users []int) (readS, writeS []Series, err error) {
	if users == nil {
		users = Fig7Users
	}
	specs := cfg.Specs()
	for _, scheme := range SchemeNames {
		rs := Series{Label: scheme}
		ws := Series{Label: scheme}
		for _, u := range users {
			inst, err := BuildInstance(scheme, cfg, specs)
			if err != nil {
				return nil, nil, fmt.Errorf("fig7 %s u=%d: %w", scheme, u, err)
			}
			res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, u, cfg.OpsPerUser, workload.OpRead, cfg.Seed)
			if err != nil {
				return nil, nil, fmt.Errorf("fig7 %s u=%d read: %w", scheme, u, err)
			}
			rs.Points = append(rs.Points, Point{X: float64(u), Y: seconds(res.AvgPerOp)})
			inst.Disk.ResetClock()
			res, err = workload.RunInterleaved(inst.Disk, inst.FS, specs, u, cfg.OpsPerUser, workload.OpWrite, cfg.Seed+7)
			if err != nil {
				return nil, nil, fmt.Errorf("fig7 %s u=%d write: %w", scheme, u, err)
			}
			ws.Points = append(ws.Points, Point{X: float64(u), Y: seconds(res.AvgPerOp)})
		}
		readS = append(readS, rs)
		writeS = append(writeS, ws)
	}
	return readS, writeS, nil
}

// Fig8SizesKB are the file sizes (KB) of Figure 8.
var Fig8SizesKB = []int{200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000}

// FileSizeCurve reproduces Figure 8: normalized access time (seconds per KB)
// versus file size under a fixed degree of concurrency (the interleaved
// multi-user regime of Figure 7; the paper's point is that the relative
// trade-offs are independent of file size).
func FileSizeCurve(cfg Config, sizesKB []int, users int) (readS, writeS []Series, err error) {
	if sizesKB == nil {
		sizesKB = Fig8SizesKB
	}
	if users <= 0 {
		users = 16
	}
	for _, scheme := range SchemeNames {
		rs := Series{Label: scheme}
		ws := Series{Label: scheme}
		for _, kb := range sizesKB {
			sized := cfg
			sized.FileLo = int64(kb) << 10
			sized.FileHi = int64(kb) << 10
			if sized.CoverBytes < sized.FileHi {
				sized.CoverBytes = sized.FileHi
			}
			// Keep the populated volume roughly as full as the base config.
			sized.NumFiles = int(cfg.VolumeBytes / 2 / sized.FileHi)
			if sized.NumFiles > cfg.NumFiles {
				sized.NumFiles = cfg.NumFiles
			}
			if sized.NumFiles < users {
				sized.NumFiles = users
			}
			specs := workload.FixedSpecs(sized.NumFiles, int64(kb)<<10, "f")
			inst, err := BuildInstance(scheme, sized, specs)
			if err != nil {
				return nil, nil, fmt.Errorf("fig8 %s %dKB: %w", scheme, kb, err)
			}
			res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, users, sized.OpsPerUser, workload.OpRead, sized.Seed)
			if err != nil {
				return nil, nil, fmt.Errorf("fig8 %s %dKB read: %w", scheme, kb, err)
			}
			rs.Points = append(rs.Points, Point{X: float64(kb), Y: seconds(res.AvgPerOp) / float64(kb)})
			inst.Disk.ResetClock()
			res, err = workload.RunInterleaved(inst.Disk, inst.FS, specs, users, sized.OpsPerUser, workload.OpWrite, sized.Seed+7)
			if err != nil {
				return nil, nil, fmt.Errorf("fig8 %s %dKB write: %w", scheme, kb, err)
			}
			ws.Points = append(ws.Points, Point{X: float64(kb), Y: seconds(res.AvgPerOp) / float64(kb)})
		}
		readS = append(readS, rs)
		writeS = append(writeS, ws)
	}
	return readS, writeS, nil
}

// Fig9BlockSizes are the block sizes (bytes) of Figure 9.
var Fig9BlockSizes = []int{512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// BlockSizeCurve reproduces Figure 9: serial (single-user) access time
// versus block size, each file retrieved in its entirety before the next is
// opened, with the file size fixed (paper: 1 MB).
func BlockSizeCurve(cfg Config, blockSizes []int, fileSize int64) (readS, writeS []Series, err error) {
	if blockSizes == nil {
		blockSizes = Fig9BlockSizes
	}
	if fileSize <= 0 {
		fileSize = cfg.FileHi / 2
	}
	for _, scheme := range SchemeNames {
		rs := Series{Label: scheme}
		ws := Series{Label: scheme}
		for _, bs := range blockSizes {
			sized := cfg
			sized.BlockSize = bs
			sized.FileLo = fileSize
			sized.FileHi = fileSize
			if sized.CoverBytes < fileSize {
				sized.CoverBytes = fileSize
			}
			sized.NumFiles = int(cfg.VolumeBytes / 2 / fileSize)
			if sized.NumFiles > cfg.NumFiles {
				sized.NumFiles = cfg.NumFiles
			}
			// Respect StegFS's per-file overhead (header + free pool): with
			// large blocks and small files it dominates, so bound the file
			// count to what fits in ~60% of the volume.
			fileBlocks := (fileSize + int64(bs) - 1) / int64(bs)
			perFile := fileBlocks + int64(sized.Steg.FreeMax) + 2
			if maxN := int(sized.VolumeBytes / int64(bs) * 6 / 10 / perFile); sized.NumFiles > maxN {
				sized.NumFiles = maxN
			}
			if sized.NumFiles < 1 {
				sized.NumFiles = 1
			}
			specs := workload.FixedSpecs(sized.NumFiles, fileSize, "f")
			inst, err := BuildInstance(scheme, sized, specs)
			if err != nil {
				return nil, nil, fmt.Errorf("fig9 %s bs=%d: %w", scheme, bs, err)
			}
			res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, 1, sized.OpsPerUser, workload.OpRead, sized.Seed)
			if err != nil {
				return nil, nil, fmt.Errorf("fig9 %s bs=%d read: %w", scheme, bs, err)
			}
			rs.Points = append(rs.Points, Point{X: float64(bs) / 1024, Y: seconds(res.AvgPerOp)})
			inst.Disk.ResetClock()
			res, err = workload.RunInterleaved(inst.Disk, inst.FS, specs, 1, sized.OpsPerUser, workload.OpWrite, sized.Seed+7)
			if err != nil {
				return nil, nil, fmt.Errorf("fig9 %s bs=%d write: %w", scheme, bs, err)
			}
			ws.Points = append(ws.Points, Point{X: float64(bs) / 1024, Y: seconds(res.AvgPerOp)})
		}
		readS = append(readS, rs)
		writeS = append(writeS, ws)
	}
	return readS, writeS, nil
}
