package bench

import (
	"fmt"
	"runtime"
	"time"

	"stegfs/internal/gf256"
	"stegfs/internal/ida"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

// SpeedRow is one line of the raw-speed table (-exp speed): a crypto or
// data-path operation with its single-goroutine throughput and heap cost.
// Unlike the rest of the suite these are wall-clock numbers, not simulated
// disk seconds — the point is the CPU cost of the sealed data path itself.
type SpeedRow struct {
	Op          string  `json:"op"`
	Bytes       int     `json:"bytes"`
	NsPerOp     float64 `json:"nsPerOp"`
	MBps        float64 `json:"mbps"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// speedMeasure times fn until one doubling run lasts at least budget, then
// reports that run's per-op time, throughput and heap allocations. One
// unmeasured warm-up call primes pools, caches and lazily built tables.
func speedMeasure(op string, bytesPerOp int, budget time.Duration, fn func()) SpeedRow {
	fn()
	var before, after runtime.MemStats
	for iters := 1; ; iters *= 2 {
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed < budget && iters < 1<<22 {
			continue
		}
		row := SpeedRow{
			Op:          op,
			Bytes:       bytesPerOp,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		}
		if bytesPerOp > 0 && elapsed > 0 {
			row.MBps = float64(bytesPerOp) * float64(iters) / elapsed.Seconds() / 1e6
		}
		return row
	}
}

// speedVolume builds a small cached volume for the end-to-end rows. The
// volume is deliberately cache-resident (~32 MB, fully covered by the block
// cache) so the rows measure the sealed software path — open, header reload,
// tree walk, batched cache read, vectored open/seal — rather than the
// simulated disk.
func speedVolume(cfg Config) (*stegfs.HiddenView, error) {
	bs := cfg.BlockSize
	nBlocks := int64(32<<20) / int64(bs)
	store, err := vdisk.NewMemStore(nBlocks, bs)
	if err != nil {
		return nil, err
	}
	p := cfg.Steg
	p.Seed = cfg.Seed
	p.FillVolume = false
	p.DeterministicKeys = true
	p.NDummy = 4
	p.DummyAvgSize = int64(4 * bs)
	fs, err := stegfs.Format(store, p, stegfs.WithCache(int(nBlocks)))
	if err != nil {
		return nil, err
	}
	return fs.NewHiddenView("speed"), nil
}

// SpeedSuite measures the crypto primitives and the cached end-to-end data
// path. budget is the minimum measured duration per row; CI smoke passes a
// tiny budget, interactive runs a larger one for stable numbers.
func SpeedSuite(cfg Config, budget time.Duration) ([]SpeedRow, error) {
	bs := cfg.BlockSize
	fak, err := sgcrypto.NewFAK()
	if err != nil {
		return nil, err
	}
	sealer, err := sgcrypto.NewSealer("bench/speed", fak)
	if err != nil {
		return nil, err
	}
	var rows []SpeedRow
	add := func(r SpeedRow) { rows = append(rows, r) }

	// Per-block sealing: the unit of every data-block write and of cache
	// misses on the read path.
	src := make([]byte, bs)
	dst := make([]byte, bs)
	for i := range src {
		src[i] = byte(i)
	}
	add(speedMeasure("seal-block", bs, budget, func() {
		_ = sealer.Seal(7, dst, src)
	}))
	add(speedMeasure("open-block", bs, budget, func() {
		_ = sealer.Open(7, dst, src)
	}))

	// Vectored sealing: one call covering a 32-block span, the shape of the
	// cached read/write fast path.
	const spanBlocks = 32
	nos := make([]int64, spanBlocks)
	for i := range nos {
		nos[i] = int64(100 + i)
	}
	flatSrc := make([]byte, spanBlocks*bs)
	flatDst := make([]byte, spanBlocks*bs)
	add(speedMeasure("seal-range32", spanBlocks*bs, budget, func() {
		_ = sealer.SealRange(nos, flatDst, flatSrc)
	}))
	add(speedMeasure("open-range32", spanBlocks*bs, budget, func() {
		_ = sealer.OpenRange(nos, flatDst, flatSrc)
	}))

	// Sealer construction: the fixed cost of a header probe step.
	add(speedMeasure("sealer-new", 0, budget, func() {
		_, _ = sgcrypto.NewSealer("bench/speed", fak)
	}))

	// Random filler: every freed or formatted block passes through this.
	filler := sgcrypto.NewRandomFiller(fak)
	add(speedMeasure("filler-fill", bs, budget, func() {
		filler.Fill(dst)
	}))

	// GF(256) kernels: the IDA inner loops.
	gsrc := make([]byte, 4096)
	gdst := make([]byte, 4096)
	for i := range gsrc {
		gsrc[i] = byte(i * 3)
	}
	add(speedMeasure("gf-mulslice", 4096, budget, func() {
		gf256.MulSlice(0x1d, gdst, gsrc)
	}))
	srcs := [][]byte{gsrc, gdst, gsrc, gdst}
	cs := []byte{3, 5, 7, 11}
	acc := make([]byte, 4096)
	add(speedMeasure("gf-muladd4", 4*4096, budget, func() {
		gf256.MulAddSlices(cs, acc, srcs)
	}))

	// IDA dispersal at the ablation's default shape (any 4 of 6).
	idaIn := make([]byte, 64<<10)
	for i := range idaIn {
		idaIn[i] = byte(i * 5)
	}
	ip := ida.Params{M: 4, N: 6}
	shares, err := ida.Split(idaIn, ip)
	if err != nil {
		return nil, err
	}
	add(speedMeasure("ida-split", len(idaIn), budget, func() {
		_, _ = ida.Split(idaIn, ip)
	}))
	quorum := shares[:ip.M]
	add(speedMeasure("ida-reconstruct", len(idaIn), budget, func() {
		_, _ = ida.Reconstruct(quorum, ip)
	}))

	// End-to-end cached data path through a hidden file.
	v, err := speedVolume(cfg)
	if err != nil {
		return nil, err
	}
	fileData := make([]byte, 64<<10)
	for i := range fileData {
		fileData[i] = byte(i * 7)
	}
	if err := v.Create("f", fileData); err != nil {
		return nil, err
	}
	rbuf := make([]byte, 4096)
	add(speedMeasure("cached-readat-4k", len(rbuf), budget, func() {
		_, _ = v.ReadAt("f", rbuf, 4096)
	}))
	rbig := make([]byte, 64<<10)
	add(speedMeasure("cached-readat-64k", len(rbig), budget, func() {
		_, _ = v.ReadAt("f", rbig, 0)
	}))
	add(speedMeasure("cached-read-64k", len(fileData), budget, func() {
		_, _ = v.Read("f")
	}))
	wbuf := make([]byte, 16<<10)
	add(speedMeasure("cached-writeat-16k", len(wbuf), budget, func() {
		_, _ = v.WriteAt("f", wbuf, 0)
	}))
	if err := v.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatSpeedRows renders the table body for cmd/stegbench.
func FormatSpeedRows(rows []SpeedRow) []string {
	out := []string{fmt.Sprintf("  %-18s %8s %12s %10s %10s", "op", "bytes", "ns/op", "MB/s", "allocs/op")}
	for _, r := range rows {
		mbps := "-"
		if r.MBps > 0 {
			mbps = fmt.Sprintf("%.1f", r.MBps)
		}
		out = append(out, fmt.Sprintf("  %-18s %8d %12.0f %10s %10.1f",
			r.Op, r.Bytes, r.NsPerOp, mbps, r.AllocsPerOp))
	}
	return out
}
