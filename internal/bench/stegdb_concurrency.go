package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stegfs/internal/stegdb"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

// StegDBConcurrencyRow is one level of the stegdb ablation (A8): the same
// mixed Get/Put/Delete/Scan workload fanned across Goroutines workers on
// one shared hidden table.
type StegDBConcurrencyRow struct {
	Goroutines  int
	WallSeconds float64 // wall-clock time for the whole op set
	OpsPerSec   float64 // totalOps / WallSeconds
	Speedup     float64 // OpsPerSec relative to the first (1-goroutine) row
	DiskSeconds float64 // simulated-disk time consumed inside the window
	HitRate     float64 // block-cache hit rate inside the window
}

// Shared-table shape for the sweep. The whole database file fits both the
// block cache and the pager page cache, so nothing is evicted mid-window —
// the window's miss set is exactly the deliberately-cold bucket pages.
const (
	sdbCacheBlocks = 8192 // block cache: comfortably above the file's blocks
	sdbPageCache   = 1024 // pager page cache frames
	sdbBuckets     = 256  // hash index buckets
	sdbHotKeys     = 64   // "a-ro-*": read-only, warmed, hash-path hits
	sdbRWKeys      = 32   // "b-rw-*": replace targets + snapshot Range window
	sdbColdKeys    = 4096 // "e-cold-*": each Get pays a bucket-page miss
)

// StegDBConcurrencySweep runs ablation A8: goroutines x {1,2,4,8,16} of a
// mixed point/range workload over ONE shared hidden table on a cached,
// latency-emulated volume. Per 8 ops: 3 hot Gets (hash path, pager-cache
// hits), 2 cold Gets (each touches a never-warmed bucket page — emulated
// device latency), 1 replace Put (B-tree + hash, in-cache), 1 transient
// Put+Delete (exercises both indexes and the rollback-consistent pair), and
// 1 snapshot Range over the replace window (verifying a consistent view
// while writers run). The op set is deterministic and identical at every
// level — only the partition across goroutines changes — and each level
// restores the same warm state first, so the simulated-disk cost must stay
// flat while wall-clock time shrinks: scaling has to come from stegdb's
// latching (pager page latches, hash stripes, snapshot reads), not from
// charging the disk differently. The measured window covers the concurrent
// ops; the write-back Sync runs between levels, unmeasured, like A5 — the
// flush pipeline's cost is ablation A7's subject, and folding its serial
// drain into this window would measure the block cache, not stegdb's
// locking.
func StegDBConcurrencySweep(cfg Config, levels []int, totalOps int, emuScale float64) ([]StegDBConcurrencyRow, error) {
	if levels == nil {
		levels = []int{1, 2, 4, 8, 16}
	}
	if totalOps <= 0 {
		totalOps = 256
	}
	if emuScale <= 0 {
		emuScale = 0.5
	}
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	policy := cfg.CachePolicy
	if policy == "" {
		policy = "2q"
	}
	fs, err := stegfs.Format(disk, p, stegfs.WithCache(sdbCacheBlocks), stegfs.WithCachePolicy(policy))
	if err != nil {
		return nil, err
	}
	view := fs.NewHiddenView("dbc")
	tab, err := stegdb.CreateTable(view, "a8.db", true, sdbBuckets)
	if err != nil {
		return nil, err
	}
	pg := tab.Pager()
	pg.SetPageCacheSize(sdbPageCache)

	// Populate. Values are fixed-width so replaces never change page
	// layout, and every value embeds its key so torn rows are detectable.
	hotKey := func(i int) string { return fmt.Sprintf("a-ro-%04d", i%sdbHotKeys) }
	rwKey := func(i int) string { return fmt.Sprintf("b-rw-%04d", i%sdbRWKeys) }
	coldKey := func(c int) string { return fmt.Sprintf("e-cold-%05d", c%sdbColdKeys) }
	for i := 0; i < sdbHotKeys; i++ {
		k := hotKey(i)
		if err := tab.Put([]byte(k), []byte(k+"=hotrow")); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sdbRWKeys; i++ {
		k := rwKey(i)
		if err := tab.Put([]byte(k), []byte(fmt.Sprintf("%s:%06d", k, 0))); err != nil {
			return nil, err
		}
	}
	for c := 0; c < sdbColdKeys; c++ {
		k := coldKey(c)
		if err := tab.Put([]byte(k), []byte(k+"=coldrow")); err != nil {
			return nil, err
		}
	}
	if err := tab.Sync(); err != nil {
		return nil, err
	}

	// One op of the deterministic mix; the index fixes the op, the level
	// only decides which goroutine runs it.
	doOp := func(i int) error {
		switch i % 8 {
		case 1: // replace Put on the rw window (tree + hash, in-cache)
			k := rwKey(i / 8)
			if err := tab.Put([]byte(k), []byte(fmt.Sprintf("%s:%06d", k, i))); err != nil {
				return fmt.Errorf("op %d rw put: %w", i, err)
			}
		case 3, 7: // cold Get: a never-warmed bucket page pays device latency
			c := (i/8)*2 + i%8/7
			k := coldKey(c)
			v, ok, err := tab.Get([]byte(k))
			if err != nil || !ok || string(v) != k+"=coldrow" {
				return fmt.Errorf("op %d cold get %s = %q %v %v", i, k, v, ok, err)
			}
		case 4: // transient row: Put then Delete through both structures
			k := []byte(fmt.Sprintf("d-tmp-%06d", i))
			if err := tab.Put(k, []byte("transient-row!")); err != nil {
				return fmt.Errorf("op %d tmp put: %w", i, err)
			}
			found, err := tab.Delete(k)
			if err != nil || !found {
				return fmt.Errorf("op %d tmp delete = %v %v", i, found, err)
			}
		case 6: // snapshot Range over the rw window, concurrent with writers
			var n int
			err := tab.Range([]byte("b-"), []byte("b-~"), func(k, v []byte) bool {
				ks, vs := string(k), string(v)
				if !strings.HasPrefix(vs, ks+":") || len(vs) != len(ks)+1+6 {
					n = -1 << 20 // torn row; force the count check to fail
					return false
				}
				n++
				return true
			})
			if err != nil {
				return fmt.Errorf("op %d range: %w", i, err)
			}
			if n != sdbRWKeys {
				return fmt.Errorf("op %d range saw %d rw rows, want %d", i, n, sdbRWKeys)
			}
		default: // 0, 2, 5: hot Get through the hash path (pager-cache hit)
			k := hotKey(i)
			v, ok, err := tab.Get([]byte(k))
			if err != nil || !ok || string(v) != k+"=hotrow" {
				return fmt.Errorf("op %d hot get %s = %q %v %v", i, k, v, ok, err)
			}
		}
		return nil
	}

	// warm re-establishes the canonical caches: the tree (one full snapshot
	// scan) plus the directory and hot/rw bucket pages. Cold bucket pages
	// are deliberately left out — they are the window's fixed miss set.
	warm := func() error {
		var n int
		if err := tab.Scan(func(k, v []byte) bool { n++; return true }); err != nil {
			return err
		}
		for i := 0; i < sdbHotKeys; i++ {
			if _, _, err := tab.Get([]byte(hotKey(i))); err != nil {
				return err
			}
		}
		for i := 0; i < sdbRWKeys; i++ {
			if _, _, err := tab.Get([]byte(rwKey(i))); err != nil {
				return err
			}
		}
		return nil
	}

	// Settle pass: run the whole op set once (unmeasured, no emulation) so
	// one-time page splits, allocations and file growth happen before any
	// level is timed.
	for i := 0; i < totalOps; i++ {
		if err := doOp(i); err != nil {
			return nil, fmt.Errorf("settle: %w", err)
		}
	}
	if err := tab.Sync(); err != nil {
		return nil, err
	}

	var rows []StegDBConcurrencyRow
	for _, g := range levels {
		if g <= 0 {
			return nil, fmt.Errorf("bench: invalid concurrency level %d", g)
		}
		// Same cold start every level: drop the pager page cache, drop the
		// block cache, re-warm the hot structures with emulation off.
		if err := pg.InvalidatePageCache(); err != nil {
			return nil, err
		}
		if err := fs.Cache().Invalidate(); err != nil {
			return nil, err
		}
		if err := warm(); err != nil {
			return nil, fmt.Errorf("g=%d warm-up: %w", g, err)
		}
		disk.EmulateLatency(emuScale)
		preDisk := disk.Elapsed()
		preStats, _ := fs.CacheStats()

		errs := make(chan error, g)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			// Contiguous chunks: a strided split would alias the op mix's
			// period-8 structure and hand every cold op to one goroutine.
			lo, hi := w*totalOps/g, (w+1)*totalOps/g
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := doOp(i); err != nil {
						errs <- err
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		wall := time.Since(start)
		disk.EmulateLatency(0)
		close(errs)
		for err := range errs {
			return nil, fmt.Errorf("g=%d: %w", g, err)
		}
		// Unmeasured Sync barrier: each level's dirty pages reach the
		// device before the next level resets the caches.
		if err := tab.Sync(); err != nil {
			return nil, fmt.Errorf("g=%d sync: %w", g, err)
		}

		row := StegDBConcurrencyRow{
			Goroutines:  g,
			WallSeconds: wall.Seconds(),
			DiskSeconds: (disk.Elapsed() - preDisk).Seconds(),
		}
		if wall > 0 {
			row.OpsPerSec = float64(totalOps) / wall.Seconds()
		}
		if stats, ok := fs.CacheStats(); ok {
			row.HitRate = stats.Sub(preStats).HitRate()
		}
		rows = append(rows, row)
	}
	if len(rows) > 0 && rows[0].OpsPerSec > 0 {
		for i := range rows {
			rows[i].Speedup = rows[i].OpsPerSec / rows[0].OpsPerSec
		}
	}

	// Post-flight: the table must come out of the sweep fully consistent.
	wantRows := int64(sdbHotKeys + sdbRWKeys + sdbColdKeys)
	gotRows, err := tab.Rows()
	if err != nil {
		return nil, err
	}
	if gotRows != wantRows {
		return nil, fmt.Errorf("bench: table ended with %d rows, want %d", gotRows, wantRows)
	}
	if err := tab.Check(); err != nil {
		return nil, fmt.Errorf("bench: post-sweep check: %w", err)
	}
	// Keys must still scan in order (snapshot reads share this path).
	var keys []string
	if err := tab.Scan(func(k, v []byte) bool { keys = append(keys, string(k)); return true }); err != nil {
		return nil, err
	}
	if !sort.StringsAreSorted(keys) {
		return nil, fmt.Errorf("bench: post-sweep scan out of order")
	}
	return rows, nil
}
