package bench

import "testing"

// TestPolicySweepShape pins the acceptance shape of the A4b ablation: at a
// sub-working-set capacity the scan+hot workload leaves LRU at ~1.0x over
// the uncached baseline, while ARC and 2Q keep the hot metadata resident
// and clear 1.5x.
func TestPolicySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy sweep in -short mode")
	}
	cfg := SmallConfig()
	rows, err := PolicySweep(cfg, nil, []int{256}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // uncached + {lru, arc, 2q} x {256}
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	byPolicy := make(map[string]PolicyRow)
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	base := byPolicy["uncached"]
	if base.CacheBlocks != 0 || base.Seconds <= 0 {
		t.Fatalf("baseline row malformed: %+v", base)
	}
	lru, arc, twoQ := byPolicy["lru"], byPolicy["arc"], byPolicy["2q"]
	t.Logf("cap=256: lru=%.2fx (%.1f%%)  arc=%.2fx (%.1f%%)  2q=%.2fx (%.1f%%)",
		lru.Speedup, lru.HitRate*100, arc.Speedup, arc.HitRate*100, twoQ.Speedup, twoQ.HitRate*100)
	if lru.Speedup > 1.1 {
		t.Errorf("LRU speedup %.2fx at cap 256; the thrash regime no longer thrashes LRU", lru.Speedup)
	}
	if arc.Speedup < 1.5 {
		t.Errorf("ARC speedup %.2fx at cap 256, want >= 1.5x", arc.Speedup)
	}
	if twoQ.Speedup < 1.5 {
		t.Errorf("2Q speedup %.2fx at cap 256, want >= 1.5x", twoQ.Speedup)
	}
}
