package bench

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// ConcurrencyRow is one level of the parallel-read-path ablation (A5): the
// same mixed-read workload fanned across Goroutines workers on one shared
// StegFS instance.
type ConcurrencyRow struct {
	Goroutines  int
	WallSeconds float64 // wall-clock time for the whole op set
	OpsPerSec   float64 // totalOps / WallSeconds
	Speedup     float64 // OpsPerSec relative to the first (1-goroutine) row
	DiskSeconds float64 // simulated-disk time consumed inside the window
	HitRate     float64 // cache hit rate inside the window
}

// Defaults for the sweep's shared instance. The hot set (plus headers and
// pointer blocks) fits the cache; the cold set cycles far beyond it, so
// every cold read pays emulated device latency. With the default 256 ops the
// 64 cold reads touch the 64 cold files exactly once each, so the window's
// miss set — and with it the simulated-disk cost — is identical at every
// concurrency level no matter how the goroutines interleave.
const (
	concCacheBlocks = 2048
	concHotFiles    = 12
	concHotBlocks   = 32
	concColdFiles   = 64
	concColdBlocks  = 64
	concPlainFiles  = 6
	concFillFiles   = 8 // warm-up scan set; never read inside the window
	concFillBlocks  = 64
)

// ConcurrencySweep runs ablation A5: goroutines x {1,2,4,8,16} over one
// shared cached StegFS volume, reproducing the multi-user regime of Figure 7
// with real parallelism instead of interleaved turns. The disk runs in
// latency-emulation mode (vdisk.Disk.EmulateLatency), so every cache miss
// actually waits its simulated service time; wall-clock throughput then
// measures how much of that device latency the FS software stack can keep in
// flight. Under the old whole-FS mutex the sleeps serialized no matter how
// many users piled on; with per-object locks, a shared allocation RWMutex
// and non-blocking cache miss fetches, readers of distinct objects overlap
// their waits and throughput scales until the op mix's CPU share saturates.
//
// The op mix is deterministic and identical at every level (only the
// partition across goroutines changes): per 8 ops, 5 hot hidden reads
// (cache hits), 2 cold hidden reads (emulated device latency) and 1 plain
// file read. Before each level the cache is reset and re-warmed to the same
// steady state, so the simulated-disk cost of the window stays comparable
// across levels — concurrency must buy wall-clock time, not charge the
// simulated disk differently.
func ConcurrencySweep(cfg Config, levels []int, totalOps int, emuScale float64) ([]ConcurrencyRow, error) {
	if levels == nil {
		levels = []int{1, 2, 4, 8, 16}
	}
	if totalOps <= 0 {
		totalOps = 256
	}
	if emuScale <= 0 {
		emuScale = 0.5
	}
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	policy := cfg.CachePolicy
	if policy == "" {
		policy = "2q" // scan-resistant: the cold cycle must not evict the hot set
	}
	fs, err := stegfs.Format(disk, p, stegfs.WithCache(concCacheBlocks), stegfs.WithCachePolicy(policy))
	if err != nil {
		return nil, err
	}
	view := fs.NewHiddenView("conc")

	bs := int64(cfg.BlockSize)
	mkFiles := func(prefix string, count int, blocks int64) ([]workload.FileSpec, [][]byte, error) {
		specs := make([]workload.FileSpec, count)
		payloads := make([][]byte, count)
		for i := range specs {
			specs[i] = workload.FileSpec{Name: fmt.Sprintf("%s%02d", prefix, i), Size: blocks * bs}
			payloads[i] = workload.Payload(specs[i], cfg.Seed)
			if err := view.Create(specs[i].Name, payloads[i]); err != nil {
				return nil, nil, fmt.Errorf("populate %s: %w", specs[i].Name, err)
			}
		}
		return specs, payloads, nil
	}
	hotSpecs, hotData, err := mkFiles("hot", concHotFiles, concHotBlocks)
	if err != nil {
		return nil, err
	}
	coldSpecs, coldData, err := mkFiles("cold", concColdFiles, concColdBlocks)
	if err != nil {
		return nil, err
	}
	fillSpecs, _, err := mkFiles("fill", concFillFiles, concFillBlocks)
	if err != nil {
		return nil, err
	}
	plainNames := make([]string, concPlainFiles)
	plainData := make([][]byte, concPlainFiles)
	for i := range plainNames {
		plainNames[i] = fmt.Sprintf("plain%02d", i)
		plainData[i] = workload.Payload(workload.FileSpec{Name: plainNames[i], Size: 8 * bs}, cfg.Seed+3)
		if err := fs.Create(plainNames[i], plainData[i]); err != nil {
			return nil, fmt.Errorf("populate %s: %w", plainNames[i], err)
		}
	}
	if err := view.Sync(); err != nil {
		return nil, err
	}

	// One op of the deterministic mix; the index fixes the op, the level
	// only decides which goroutine runs it.
	doOp := func(i int) error {
		switch {
		case i%8 == 5:
			j := (i / 8) % len(plainNames)
			got, err := fs.Read(plainNames[j])
			if err != nil {
				return fmt.Errorf("op %d plain %s: %w", i, plainNames[j], err)
			}
			if !bytes.Equal(got, plainData[j]) {
				return fmt.Errorf("op %d: plain %s corrupted", i, plainNames[j])
			}
		case i%4 == 3:
			j := (i / 4) % len(coldSpecs)
			got, err := view.Read(coldSpecs[j].Name)
			if err != nil {
				return fmt.Errorf("op %d cold %s: %w", i, coldSpecs[j].Name, err)
			}
			if !bytes.Equal(got, coldData[j]) {
				return fmt.Errorf("op %d: cold %s corrupted", i, coldSpecs[j].Name)
			}
		default:
			j := i % len(hotSpecs)
			got, err := view.Read(hotSpecs[j].Name)
			if err != nil {
				return fmt.Errorf("op %d hot %s: %w", i, hotSpecs[j].Name, err)
			}
			if !bytes.Equal(got, hotData[j]) {
				return fmt.Errorf("op %d: hot %s corrupted", i, hotSpecs[j].Name)
			}
		}
		return nil
	}

	// warm re-establishes the canonical cache state: hot pass, a filler scan
	// (pushes the hot set out of 2Q's probation FIFO — deliberately NOT the
	// cold set, or whichever cold blocks survived in the FIFO would hand
	// position-dependent free hits to some window schedules), hot pass (the
	// re-reference promotes the hot set into the protected region), plain
	// pass.
	warm := func() error {
		pass := func(specs []workload.FileSpec) error {
			for _, s := range specs {
				if _, err := view.Read(s.Name); err != nil {
					return err
				}
			}
			return nil
		}
		if err := pass(hotSpecs); err != nil {
			return err
		}
		if err := pass(fillSpecs); err != nil {
			return err
		}
		if err := pass(hotSpecs); err != nil {
			return err
		}
		for _, n := range plainNames {
			if _, err := fs.Read(n); err != nil {
				return err
			}
		}
		return nil
	}

	disk.EmulateLatency(emuScale)
	defer disk.EmulateLatency(0)
	var rows []ConcurrencyRow
	for _, g := range levels {
		if g <= 0 {
			return nil, fmt.Errorf("bench: invalid concurrency level %d", g)
		}
		if err := fs.Cache().Invalidate(); err != nil {
			return nil, err
		}
		disk.EmulateLatency(0) // warm-up is not part of the measurement
		if err := warm(); err != nil {
			return nil, fmt.Errorf("g=%d warm-up: %w", g, err)
		}
		disk.EmulateLatency(emuScale)
		preDisk := disk.Elapsed()
		preStats, _ := fs.CacheStats()

		errs := make(chan error, g)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			// Contiguous chunks: a strided split (i % g == w) would alias
			// the op mix's period-4/8 structure and hand every cold op to
			// the same goroutine at small g.
			lo, hi := w*totalOps/g, (w+1)*totalOps/g
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := doOp(i); err != nil {
						errs <- err
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		close(errs)
		wall := time.Since(start)
		for err := range errs {
			return nil, fmt.Errorf("g=%d: %w", g, err)
		}

		row := ConcurrencyRow{
			Goroutines:  g,
			WallSeconds: wall.Seconds(),
			DiskSeconds: (disk.Elapsed() - preDisk).Seconds(),
		}
		if wall > 0 {
			row.OpsPerSec = float64(totalOps) / wall.Seconds()
		}
		if stats, ok := fs.CacheStats(); ok {
			row.HitRate = stats.Sub(preStats).HitRate()
		}
		rows = append(rows, row)
	}
	if len(rows) > 0 && rows[0].OpsPerSec > 0 {
		for i := range rows {
			rows[i].Speedup = rows[i].OpsPerSec / rows[0].OpsPerSec
		}
	}
	return rows, nil
}
