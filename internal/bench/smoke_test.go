package bench

import (
	"testing"

	"stegfs/internal/workload"
)

// tinyConfig is a very small configuration for fast harness tests.
func tinyConfig() Config {
	cfg := SmallConfig()
	cfg.VolumeBytes = 8 << 20
	cfg.BlockSize = 1 << 10
	cfg.NumFiles = 12
	cfg.FileLo = 16 << 10
	cfg.FileHi = 32 << 10
	cfg.CoverBytes = 32 << 10
	cfg.OpsPerUser = 2
	cfg.Steg.DummyAvgSize = 16 << 10
	cfg.Steg.NDummy = 2
	return cfg
}

func TestSmokeAllSchemesRun(t *testing.T) {
	cfg := tinyConfig()
	specs := cfg.Specs()
	for _, scheme := range SchemeNames {
		inst, err := BuildInstance(scheme, cfg, specs)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, 2, 2, workload.OpRead, 1)
		if err != nil {
			t.Fatalf("%s read: %v", scheme, err)
		}
		if res.Ops != 4 || res.AvgPerOp <= 0 {
			t.Fatalf("%s read: bad result %+v", scheme, res)
		}
		res, err = workload.RunInterleaved(inst.Disk, inst.FS, specs, 2, 2, workload.OpWrite, 2)
		if err != nil {
			t.Fatalf("%s write: %v", scheme, err)
		}
		if res.Ops != 4 || res.AvgPerOp <= 0 {
			t.Fatalf("%s write: bad result %+v", scheme, res)
		}
	}
}
