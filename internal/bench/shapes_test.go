package bench

// Shape tests: each experiment must reproduce the qualitative result the
// paper reports — who wins, by roughly what factor, where the crossovers
// fall. These are the automated checks behind EXPERIMENTS.md.

import (
	"testing"

	"stegfs/internal/workload"
)

func shapeConfig() Config {
	cfg := SmallConfig()
	cfg.VolumeBytes = 24 << 20
	cfg.FileLo = 48 << 10
	cfg.FileHi = 96 << 10
	cfg.NumFiles = 32
	cfg.CoverBytes = 96 << 10
	cfg.OpsPerUser = 2
	cfg.Steg.DummyAvgSize = 48 << 10
	cfg.Steg.NDummy = 4
	return cfg
}

// latencies returns per-scheme read/write latencies at a given concurrency.
func latencies(t *testing.T, cfg Config, users int) (map[string]float64, map[string]float64) {
	t.Helper()
	specs := cfg.Specs()
	reads := map[string]float64{}
	writes := map[string]float64{}
	for _, scheme := range SchemeNames {
		inst, err := BuildInstance(scheme, cfg, specs)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, users, cfg.OpsPerUser, workload.OpRead, cfg.Seed)
		if err != nil {
			t.Fatalf("%s read: %v", scheme, err)
		}
		reads[scheme] = res.AvgPerOp.Seconds()
		inst.Disk.ResetClock()
		res, err = workload.RunInterleaved(inst.Disk, inst.FS, specs, users, cfg.OpsPerUser, workload.OpWrite, cfg.Seed+7)
		if err != nil {
			t.Fatalf("%s write: %v", scheme, err)
		}
		writes[scheme] = res.AvgPerOp.Seconds()
	}
	return reads, writes
}

// TestShapeSpaceUtilization asserts the §5.2 result: StegFS > StegCover >>
// StegRand, with StegFS above 80% and StegRand below 10%.
func TestShapeSpaceUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := shapeConfig()
	rows, err := SpaceTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	util := map[string]float64{}
	for _, r := range rows {
		util[r.Scheme] = r.Utilization
	}
	if util["StegFS"] < 0.80 {
		t.Fatalf("StegFS utilization %.2f < 0.80 (paper: >80%%)", util["StegFS"])
	}
	if util["StegCover"] < 0.60 || util["StegCover"] > 0.85 {
		t.Fatalf("StegCover utilization %.2f outside the ~75%% band", util["StegCover"])
	}
	if util["StegRand"] > 0.10 {
		t.Fatalf("StegRand utilization %.2f > 0.10 (paper: ~5%%)", util["StegRand"])
	}
	if util["StegFS"] < 10*util["StegRand"] {
		t.Fatalf("StegFS (%.2f) should be >= 10x StegRand (%.2f) — the paper's headline",
			util["StegFS"], util["StegRand"])
	}
}

// TestShapeFig6 asserts the Figure 6 shape: utilization peaks in the 8..16
// replication window and declines by 64; smaller blocks do not beat larger
// blocks at the peak.
func TestShapeFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := shapeConfig()
	series := StegRandSpaceCurve(cfg, []int{512, 4 << 10}, []int{1, 2, 4, 8, 16, 32, 64})
	for _, s := range series {
		byRepl := map[float64]float64{}
		for _, p := range s.Points {
			byRepl[p.X] = p.Y
		}
		peak := byRepl[8]
		if byRepl[16] > peak {
			peak = byRepl[16]
		}
		if peak <= byRepl[1] {
			t.Fatalf("%s: peak %.4f not above replication-1 %.4f", s.Label, peak, byRepl[1])
		}
		if byRepl[64] >= peak {
			t.Fatalf("%s: replication 64 (%.4f) should trail the 8-16 window (%.4f)", s.Label, byRepl[64], peak)
		}
		if peak > 0.15 {
			t.Fatalf("%s: peak %.4f beyond the paper's <10%% band", s.Label, peak)
		}
	}
}

// TestShapeFig7 asserts the Figure 7 ordering and convergence: StegCover and
// StegRand pay large penalties; StegFS approaches the native baselines as
// concurrency grows.
func TestShapeFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := shapeConfig()
	reads1, _ := latencies(t, cfg, 1)
	reads16, writes16 := latencies(t, cfg, 16)

	// (a) Ordering under load: native fastest, StegCover/StegRand slowest.
	if reads16["CleanDisk"] > reads16["StegFS"] {
		t.Fatalf("CleanDisk read (%.3f) slower than StegFS (%.3f) at 16 users",
			reads16["CleanDisk"], reads16["StegFS"])
	}
	if reads16["StegCover"] < 2*reads16["StegFS"] {
		t.Fatalf("StegCover read (%.3f) should be >> StegFS (%.3f)",
			reads16["StegCover"], reads16["StegFS"])
	}
	if writes16["StegRand"] < 2*writes16["StegFS"] {
		t.Fatalf("StegRand write (%.3f) should be >> StegFS (%.3f) — all replicas updated",
			writes16["StegRand"], writes16["StegFS"])
	}
	if writes16["StegCover"] < 3*writes16["CleanDisk"] {
		t.Fatalf("StegCover write (%.3f) should be an order worse than CleanDisk (%.3f)",
			writes16["StegCover"], writes16["CleanDisk"])
	}

	// (b) Convergence: the StegFS:FragDisk ratio shrinks with concurrency
	// and lands near 1 under load (paper: matches native from 8-16 users).
	gap1 := reads1["StegFS"] / reads1["FragDisk"]
	gap16 := reads16["StegFS"] / reads16["FragDisk"]
	if gap16 >= gap1 {
		t.Fatalf("interleaving should close the StegFS/native gap: %.2fx -> %.2fx", gap1, gap16)
	}
	if gap16 > 1.5 {
		t.Fatalf("StegFS should track FragDisk at 16 users, got %.2fx", gap16)
	}

	// (c) Latency grows with concurrency for every scheme.
	for _, s := range SchemeNames {
		if reads16[s] <= reads1[s] {
			t.Fatalf("%s: 16-user read (%.3f) not above 1-user (%.3f)", s, reads16[s], reads1[s])
		}
	}
}

// TestShapeFig9 asserts the Figure 9 shape: serial single-user access gets
// cheaper as blocks grow, CleanDisk dominates, StegFS pays the per-block
// seek penalty that shrinks with block size.
func TestShapeFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := shapeConfig()
	readS, _, err := BlockSizeCurve(cfg, []int{512, 4 << 10, 32 << 10}, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	curves := map[string][]Point{}
	for _, s := range readS {
		curves[s.Label] = s.Points
	}
	for scheme, pts := range curves {
		if len(pts) != 3 {
			t.Fatalf("%s: %d points", scheme, len(pts))
		}
		if pts[0].Y <= pts[2].Y {
			t.Fatalf("%s: cost should fall with block size: %.4f -> %.4f", scheme, pts[0].Y, pts[2].Y)
		}
	}
	// CleanDisk best at every block size; StegFS penalty more pronounced at
	// small blocks.
	for i := 0; i < 3; i++ {
		if curves["CleanDisk"][i].Y > curves["StegFS"][i].Y {
			t.Fatalf("CleanDisk slower than StegFS at point %d", i)
		}
	}
	ratioSmall := curves["StegFS"][0].Y / curves["CleanDisk"][0].Y
	ratioLarge := curves["StegFS"][2].Y / curves["CleanDisk"][2].Y
	if ratioSmall <= ratioLarge {
		t.Fatalf("StegFS penalty should shrink with block size: %.1fx -> %.1fx", ratioSmall, ratioLarge)
	}
}

// TestShapeAblations asserts the ablation trends: more abandoned blocks =
// more attacker guess-work and less utilization; larger free pools and more
// dummies = lower snapshot-attack precision.
func TestShapeAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := shapeConfig()

	ab, err := AbandonedSweep(cfg, []float64{0, 0.10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ab[1].Candidates <= ab[0].Candidates {
		t.Fatalf("10%% abandoned should add census candidates: %d -> %d", ab[0].Candidates, ab[1].Candidates)
	}
	if ab[1].GuessWork <= ab[0].GuessWork {
		t.Fatalf("abandoned blocks should raise guess-work: %.2f -> %.2f", ab[0].GuessWork, ab[1].GuessWork)
	}

	fp, err := FreePoolSweep(cfg, []int{0, 28})
	if err != nil {
		t.Fatal(err)
	}
	if fp[1].AttackPrecision >= fp[0].AttackPrecision {
		t.Fatalf("larger pools should cut attack precision: %.2f -> %.2f",
			fp[0].AttackPrecision, fp[1].AttackPrecision)
	}

	dm, err := DummySweep(cfg, []int{0, 16})
	if err != nil {
		t.Fatal(err)
	}
	if dm[1].AttackPrecision >= dm[0].AttackPrecision {
		t.Fatalf("dummy churn should cut attack precision: %.2f -> %.2f",
			dm[0].AttackPrecision, dm[1].AttackPrecision)
	}
	if dm[1].Candidates <= dm[0].Candidates {
		t.Fatalf("dummies should add delta candidates: %d -> %d", dm[0].Candidates, dm[1].Candidates)
	}
}

// TestShapeIDA asserts the E-IDA extension result: at equal storage
// overhead, Rabin dispersal sustains a higher safe load than replication.
func TestShapeIDA(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := shapeConfig()
	rows := IDAComparison(cfg, []int{4}, 4)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].IDAUtilization <= rows[0].ReplUtilization {
		t.Fatalf("IDA (%.4f) should beat replication (%.4f) at 4x overhead",
			rows[0].IDAUtilization, rows[0].ReplUtilization)
	}
}
