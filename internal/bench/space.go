package bench

import (
	"errors"
	"fmt"
	"math/rand"

	"stegfs/internal/fsapi"
	"stegfs/internal/stegfs"
	"stegfs/internal/stegrand"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// SpaceRow is one row of the §5.2 space-utilization comparison.
type SpaceRow struct {
	Scheme      string
	Utilization float64 // aggregate unique file bytes / volume capacity
	Note        string
}

// SpaceUtilCover measures StegCover's effective space utilization by filling
// every level of every cover set with files drawn from the workload
// distribution. With 2 MB covers and (1,2] MB files the paper derives 75%.
func SpaceUtilCover(cfg Config) (SpaceRow, error) {
	inst, err := BuildInstance("StegCover", cfg, nil)
	if err != nil {
		return SpaceRow{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var stored int64
	for i := 0; ; i++ {
		size := cfg.FileLo + 1 + rng.Int63n(cfg.FileHi-cfg.FileLo)
		spec := workload.FileSpec{Name: fmt.Sprintf("c%05d", i), Size: size}
		if err := inst.FS.Create(spec.Name, workload.Payload(spec, cfg.Seed)); err != nil {
			if errors.Is(err, fsapi.ErrNoSpace) {
				break
			}
			return SpaceRow{}, err
		}
		stored += size
	}
	return SpaceRow{
		Scheme:      "StegCover",
		Utilization: float64(stored) / float64(cfg.VolumeBytes),
		Note:        "one file per cover; avg (lo+hi)/2 per cover of size hi",
	}, nil
}

// SpaceUtilStegRand measures StegRand's utilization at its safe-recovery
// limit for the config's block size (the best point of Figure 6 is ~5-8%).
func SpaceUtilStegRand(cfg Config, replication int) SpaceRow {
	res := stegrand.SimulateLoad(cfg.NumBlocks(), cfg.BlockSize, replication, cfg.Seed,
		stegrand.UniformFileSize(cfg.FileLo, cfg.FileHi))
	return SpaceRow{
		Scheme:      "StegRand",
		Utilization: res.Utilization,
		Note:        fmt.Sprintf("replication=%d, loaded %d files before first loss", replication, res.FilesLoaded),
	}
}

// SpaceUtilStegFS measures StegFS's utilization by loading hidden files
// until the volume refuses more. The only overheads are the abandoned
// blocks, the dummy files, the inode structures and the internal free pools
// (§5.2: ">80% with the default settings").
func SpaceUtilStegFS(cfg Config) (SpaceRow, error) {
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return SpaceRow{}, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	fs, err := stegfs.Format(disk, p)
	if err != nil {
		return SpaceRow{}, err
	}
	view := fs.NewHiddenView("space")
	rng := rand.New(rand.NewSource(cfg.Seed))
	var stored int64
	for i := 0; ; i++ {
		size := cfg.FileLo + 1 + rng.Int63n(cfg.FileHi-cfg.FileLo)
		spec := workload.FileSpec{Name: fmt.Sprintf("s%05d", i), Size: size}
		if err := view.Create(spec.Name, workload.Payload(spec, cfg.Seed)); err != nil {
			if errors.Is(err, fsapi.ErrNoSpace) {
				break
			}
			return SpaceRow{}, err
		}
		stored += size
	}
	return SpaceRow{
		Scheme:      "StegFS",
		Utilization: float64(stored) / float64(cfg.VolumeBytes),
		Note: fmt.Sprintf("abandoned=%.0f%%, dummies=%d x %dKB avg",
			p.PctAbandoned*100, p.NDummy, p.DummyAvgSize>>10),
	}, nil
}

// SpaceTable assembles the §5.2 comparison: StegCover ~75%, StegRand ~5%
// (at 1 KB blocks), StegFS >80%.
func SpaceTable(cfg Config) ([]SpaceRow, error) {
	cover, err := SpaceUtilCover(cfg)
	if err != nil {
		return nil, err
	}
	randRow := SpaceUtilStegRand(cfg, 8) // the favourable middle of Fig. 6
	steg, err := SpaceUtilStegFS(cfg)
	if err != nil {
		return nil, err
	}
	return []SpaceRow{cover, randRow, steg}, nil
}
