package bench

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// WriteConcurrencyRow is one level of the parallel-write-path ablation (A6):
// the same mixed create/rewrite/delete workload fanned across Goroutines
// workers on one shared StegFS instance.
type WriteConcurrencyRow struct {
	Goroutines  int
	WallSeconds float64 // wall-clock time for the whole op set
	OpsPerSec   float64 // totalOps / WallSeconds
	Speedup     float64 // OpsPerSec relative to the first (1-goroutine) row
	DiskSeconds float64 // simulated-disk time consumed inside the window
}

// Workload shape for the write sweep. Ops come in blocks of opsPerObject
// consecutive indexes, all touching one object, so any contiguous partition
// whose chunk size is a multiple of opsPerObject keeps every object inside
// one goroutine — concurrent ops always hit DISTINCT hidden objects, which
// is exactly the regime the sharded allocator is supposed to scale.
const (
	wcObjects      = 64
	wcOpsPerObject = 4 // rewrite, delete, re-create, rewrite
	wcObjectBlocks = 8 // payload blocks per object
)

// WriteConcurrencySweep runs ablation A6: goroutines x {1,2,4,8,16} of mixed
// hidden-file mutations — same-shape rewrites, deletes and re-creates — over
// one shared UNCACHED StegFS volume on a latency-emulating disk, so every
// block write actually waits its simulated service time at the device.
// Wall-clock throughput then measures how much of that device latency the
// write path keeps in flight. Under the old single allocation mutex every
// mutation serialized on fs.mu no matter how many writers piled on; with the
// sharded allocator, per-object locks and name-striped creates, writers to
// distinct objects contend only when their allocations land in the same
// allocation group, and the emulated waits overlap.
//
// The op set is deterministic and identical at every level — only the
// partition across goroutines changes — and every delete is paired with a
// re-create of the same object at the same size, so volume occupancy is
// stable across the window and across levels. The simulated-disk cost of
// the window therefore stays flat (block placement is uniformly random at
// every level, so expected seek costs match): concurrency must buy
// wall-clock time, not re-price the device.
func WriteConcurrencySweep(cfg Config, levels []int, rounds int, emuScale float64) ([]WriteConcurrencyRow, AllocReport, error) {
	if levels == nil {
		levels = []int{1, 2, 4, 8, 16}
	}
	if rounds <= 0 {
		rounds = 1
	}
	if emuScale <= 0 {
		emuScale = 0.5
	}
	for _, g := range levels {
		if g <= 0 {
			return nil, AllocReport{}, fmt.Errorf("bench: invalid concurrency level %d", g)
		}
		// Every goroutine boundary w*perObjOps/g must land on an object
		// boundary, or one object's 4-op block would split across two
		// goroutines and race; that holds exactly when g divides the op
		// count into equal chunks of whole objects.
		perObjOps := wcObjects * wcOpsPerObject
		if perObjOps%g != 0 || (perObjOps/g)%wcOpsPerObject != 0 {
			return nil, AllocReport{}, fmt.Errorf("bench: level %d does not tile %d ops in whole %d-op object blocks", g, perObjOps, wcOpsPerObject)
		}
	}
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return nil, AllocReport{}, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	// Uncached: the sweep prices the write path itself. (The cached regime —
	// write-back absorption plus the asynchronous flush pipeline — is
	// ablation A7, CachedWriteConcurrencySweep.)
	fs, err := stegfs.Format(disk, p)
	if err != nil {
		return nil, AllocReport{}, err
	}
	view := fs.NewHiddenView("wconc")

	bs := int64(cfg.BlockSize)
	specs := make([]workload.FileSpec, wcObjects)
	payloads := make([][]byte, wcObjects)
	alt := make([][]byte, wcObjects) // alternate content for rewrites
	for i := range specs {
		specs[i] = workload.FileSpec{Name: fmt.Sprintf("w%03d", i), Size: wcObjectBlocks * bs}
		payloads[i] = workload.Payload(specs[i], cfg.Seed)
		alt[i] = workload.Payload(specs[i], cfg.Seed+7)
		if err := view.Create(specs[i].Name, payloads[i]); err != nil {
			return nil, AllocReport{}, fmt.Errorf("populate %s: %w", specs[i].Name, err)
		}
	}

	// One op of the deterministic mix. Index i belongs to object i/4; the
	// four ops of an object run in order within one goroutine: in-place
	// rewrite, delete, re-create (fresh uniform allocation), rewrite back to
	// the canonical content.
	doOp := func(i int) error {
		obj := i / wcOpsPerObject
		name := specs[obj].Name
		switch i % wcOpsPerObject {
		case 0:
			return view.Write(name, alt[obj])
		case 1:
			return view.Delete(name)
		case 2:
			return view.Create(name, alt[obj])
		default:
			return view.Write(name, payloads[obj])
		}
	}
	totalOps := wcObjects * wcOpsPerObject * rounds

	disk.EmulateLatency(emuScale)
	defer disk.EmulateLatency(0)
	var rows []WriteConcurrencyRow
	for _, g := range levels {
		preDisk := disk.Elapsed()
		errs := make(chan error, g)
		var wg sync.WaitGroup
		start := time.Now()
		perObjOps := wcObjects * wcOpsPerObject
		for w := 0; w < g; w++ {
			lo, hi := w*perObjOps/g, (w+1)*perObjOps/g
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for round := 0; round < rounds; round++ {
					for i := lo; i < hi; i++ {
						if err := doOp(i); err != nil {
							errs <- fmt.Errorf("op %d: %w", i, err)
							return
						}
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		wall := time.Since(start)
		close(errs)
		for err := range errs {
			return nil, AllocReport{}, fmt.Errorf("g=%d: %w", g, err)
		}

		row := WriteConcurrencyRow{
			Goroutines:  g,
			WallSeconds: wall.Seconds(),
			DiskSeconds: (disk.Elapsed() - preDisk).Seconds(),
		}
		if wall > 0 {
			row.OpsPerSec = float64(totalOps) / wall.Seconds()
		}
		rows = append(rows, row)

		// Verify outside the measured window (the latency stays emulated,
		// but the cost lands between windows, not in any row).
		disk.EmulateLatency(0)
		for i, s := range specs {
			got, err := view.Read(s.Name)
			if err != nil {
				return nil, AllocReport{}, fmt.Errorf("g=%d verify %s: %w", g, s.Name, err)
			}
			if !bytes.Equal(got, payloads[i]) {
				return nil, AllocReport{}, fmt.Errorf("g=%d: %s corrupted after write window", g, s.Name)
			}
		}
		disk.EmulateLatency(emuScale)
	}
	if len(rows) > 0 && rows[0].OpsPerSec > 0 {
		for i := range rows {
			rows[i].Speedup = rows[i].OpsPerSec / rows[0].OpsPerSec
		}
	}
	return rows, NewAllocReport(fs.Alloc()), nil
}
