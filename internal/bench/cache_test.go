package bench

import "testing"

// TestCacheSweepSpeedsUpRepeatedReads asserts the acceptance criterion of
// the cache layer: on a repeated-read hidden-file workload, every cached
// configuration shows strictly lower simulated disk time than the uncached
// baseline and a nonzero hit rate.
func TestCacheSweepSpeedsUpRepeatedReads(t *testing.T) {
	cfg := SmallConfig()
	rows, err := CacheSweep(cfg, []int{0, 256, 4096}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	base := rows[0]
	if base.CacheBlocks != 0 || base.HitRate != 0 {
		t.Fatalf("baseline row not uncached: %+v", base)
	}
	for _, r := range rows[1:] {
		if r.Seconds >= base.Seconds {
			t.Errorf("cache=%d: %.4fs not strictly below uncached %.4fs",
				r.CacheBlocks, r.Seconds, base.Seconds)
		}
		if r.Stats.Hits == 0 || r.HitRate <= 0 {
			t.Errorf("cache=%d: no hits on a repeated-read workload (%+v)", r.CacheBlocks, r.Stats)
		}
		if r.Speedup <= 1 {
			t.Errorf("cache=%d: speedup %.2f not > 1", r.CacheBlocks, r.Speedup)
		}
	}
	// Bigger cache must not be slower than the small one on this workload.
	if rows[2].Seconds > rows[1].Seconds*1.05 {
		t.Errorf("larger cache slower: %v vs %v", rows[2].Seconds, rows[1].Seconds)
	}
}

// TestBuildInstanceCached checks that every scheme still formats and serves
// its workload when mounted through the device-level cache.
func TestBuildInstanceCached(t *testing.T) {
	cfg := SmallConfig()
	cfg.VolumeBytes = 16 << 20
	cfg.NumFiles = 4
	cfg.FileLo = 16 << 10
	cfg.FileHi = 32 << 10
	cfg.CoverBytes = 32 << 10
	cfg.Steg.DummyAvgSize = 16 << 10
	cfg.CacheBlocks = 512
	specs := cfg.Specs()
	for _, scheme := range SchemeNames {
		inst, err := BuildInstance(scheme, cfg, specs)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if inst.Cache == nil {
			t.Fatalf("%s: no cache mounted despite CacheBlocks", scheme)
		}
		for _, s := range specs {
			cur, err := inst.FS.ReadCursor(s.Name)
			if err != nil {
				t.Fatalf("%s: ReadCursor %s: %v", scheme, s.Name, err)
			}
			for {
				done, err := cur.Step()
				if err != nil {
					t.Fatalf("%s: Step %s: %v", scheme, s.Name, err)
				}
				if done {
					break
				}
			}
		}
	}
}
