package bench

import "testing"

// TestCacheSweepSpeedsUpRepeatedReads asserts the acceptance criterion of
// the cache layer on a repeated-read hidden-file workload. Since the read
// path went vectored (sorted batch submission per file), the uncached
// baseline itself streams sequentially, so an LRU cache in its thrashing
// regime (capacity below the scan working set) is only required to stay
// near par with uncached; once capacity covers the working set the cached
// run must be strictly faster with a high hit rate.
func TestCacheSweepSpeedsUpRepeatedReads(t *testing.T) {
	cfg := SmallConfig()
	rows, err := CacheSweep(cfg, []int{0, 256, 4096}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	base := rows[0]
	if base.CacheBlocks != 0 || base.HitRate != 0 {
		t.Fatalf("baseline row not uncached: %+v", base)
	}
	// Thrashing regime: no win required, but caching must not cost more
	// than a few percent over running uncached.
	if rows[1].Seconds > base.Seconds*1.05 {
		t.Errorf("cache=%d: %.4fs more than 5%% above uncached %.4fs",
			rows[1].CacheBlocks, rows[1].Seconds, base.Seconds)
	}
	// Covering capacity: strict win, real hit rate.
	big := rows[2]
	if big.Seconds >= base.Seconds {
		t.Errorf("cache=%d: %.4fs not strictly below uncached %.4fs",
			big.CacheBlocks, big.Seconds, base.Seconds)
	}
	if big.Stats.Hits == 0 || big.HitRate <= 0.5 {
		t.Errorf("cache=%d: hit rate %.2f too low on a repeated-read workload (%+v)",
			big.CacheBlocks, big.HitRate, big.Stats)
	}
	if big.Speedup <= 1 {
		t.Errorf("cache=%d: speedup %.2f not > 1", big.CacheBlocks, big.Speedup)
	}
	// Bigger cache must not be slower than the small one on this workload.
	if rows[2].Seconds > rows[1].Seconds*1.05 {
		t.Errorf("larger cache slower: %v vs %v", rows[2].Seconds, rows[1].Seconds)
	}
}

// TestBuildInstanceCached checks that every scheme still formats and serves
// its workload when mounted through the device-level cache.
func TestBuildInstanceCached(t *testing.T) {
	cfg := SmallConfig()
	cfg.VolumeBytes = 16 << 20
	cfg.NumFiles = 4
	cfg.FileLo = 16 << 10
	cfg.FileHi = 32 << 10
	cfg.CoverBytes = 32 << 10
	cfg.Steg.DummyAvgSize = 16 << 10
	cfg.CacheBlocks = 512
	specs := cfg.Specs()
	for _, scheme := range SchemeNames {
		inst, err := BuildInstance(scheme, cfg, specs)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if inst.Cache == nil {
			t.Fatalf("%s: no cache mounted despite CacheBlocks", scheme)
		}
		for _, s := range specs {
			cur, err := inst.FS.ReadCursor(s.Name)
			if err != nil {
				t.Fatalf("%s: ReadCursor %s: %v", scheme, s.Name, err)
			}
			for {
				done, err := cur.Step()
				if err != nil {
					t.Fatalf("%s: Step %s: %v", scheme, s.Name, err)
				}
				if done {
					break
				}
			}
		}
	}
}
