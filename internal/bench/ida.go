package bench

import (
	"fmt"

	"stegfs/internal/stegrand"
)

// IDARow compares replication and IDA dispersal at equal storage overhead —
// the extension experiment motivated by the paper's §2 discussion of
// Mnemosyne [10]: "this is achieved at the expense of higher storage and
// read/write overheads, and there is still the possibility of data loss".
type IDARow struct {
	Overhead        float64 // storage blow-up factor (k for replication, n/m for IDA)
	ReplUtilization float64 // Figure 6 procedure with k-fold replication
	IDAUtilization  float64 // same procedure with (m, n) dispersal
	IDAM, IDAN      int
}

// IDAComparison sweeps equal-overhead pairs: replication k versus IDA
// (m, n = k*m). IDA tolerates any n-m share losses instead of requiring one
// intact copy, so its utilization at the safe-recovery limit is higher.
func IDAComparison(cfg Config, overheads []int, m int) []IDARow {
	if overheads == nil {
		overheads = []int{2, 4, 8}
	}
	if m <= 0 {
		m = 4
	}
	var out []IDARow
	numBlocks := cfg.NumBlocks()
	sizes := stegrand.UniformFileSize(cfg.FileLo, cfg.FileHi)
	const runs = 3
	for _, k := range overheads {
		var replU, idaU float64
		for s := int64(0); s < runs; s++ {
			replU += stegrand.SimulateLoad(numBlocks, cfg.BlockSize, k, cfg.Seed+s, sizes).Utilization
			idaU += stegrand.SimulateLoadIDA(numBlocks, cfg.BlockSize, m, k*m, cfg.Seed+s, sizes).Utilization
		}
		out = append(out, IDARow{
			Overhead:        float64(k),
			ReplUtilization: replU / runs,
			IDAUtilization:  idaU / runs,
			IDAM:            m,
			IDAN:            k * m,
		})
	}
	return out
}

// FormatIDARows renders the comparison as aligned text lines.
func FormatIDARows(rows []IDARow) []string {
	out := []string{"  overhead  replication-util%  IDA-util%  (m,n)"}
	for _, r := range rows {
		out = append(out, fmt.Sprintf("  %8.0fx  %17.2f  %9.2f  (%d,%d)",
			r.Overhead, r.ReplUtilization*100, r.IDAUtilization*100, r.IDAM, r.IDAN))
	}
	return out
}
