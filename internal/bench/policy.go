package bench

import (
	"bytes"
	"fmt"

	"stegfs/internal/blockcache"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// PolicyRow is one cell of the replacement-policy ablation (A4b): one
// {policy, capacity} pair driven by the scan+hot hidden-file workload.
// Capacity 0 with an empty policy is the shared uncached baseline.
type PolicyRow struct {
	Policy      string
	CacheBlocks int
	Seconds     float64 // simulated disk time for the measured rounds
	Speedup     float64 // uncached baseline seconds / this row's seconds
	HitRate     float64
	Stats       blockcache.Stats
}

// PolicySweep runs ablation A4b, crossing replacement policies with cache
// capacities over the workload regime where plain LRU collapses: cyclic
// re-read rounds in which every pass over a large hidden file (the scan —
// its data blocks are touched once per round) is followed by a sweep over a
// set of small hot files (headers, p-tree blocks and a handful of data
// blocks that are re-read after every scan). The hot set fits in a few
// hundred blocks, but the scan pushes the reuse distance beyond the cache
// capacity, so a pure recency policy evicts every hot block just before its
// next use. Scan-resistant policies keep the hot set resident.
//
// One unmeasured warm-up round lets each policy reach steady state (cold
// compulsory misses are identical across policies and would only dilute the
// contrast); the measured window covers `rounds` full rounds plus the final
// FS.Sync, on the same simulated-disk clock as every other experiment.
func PolicySweep(cfg Config, policies []string, capacities []int, rounds int) ([]PolicyRow, error) {
	if policies == nil {
		policies = blockcache.PolicyNames()
	}
	if capacities == nil {
		capacities = []int{64, 256, 1024, 4096}
	}
	if rounds <= 0 {
		rounds = 4
	}
	base, err := policyPoint(cfg, "", 0, rounds)
	if err != nil {
		return nil, fmt.Errorf("uncached baseline: %w", err)
	}
	base.Policy = "uncached"
	base.Speedup = 1.0
	out := []PolicyRow{base}
	for _, pol := range policies {
		for _, capacity := range capacities {
			row, err := policyPoint(cfg, pol, capacity, rounds)
			if err != nil {
				return nil, fmt.Errorf("policy=%s cache=%d: %w", pol, capacity, err)
			}
			if row.Seconds > 0 {
				row.Speedup = base.Seconds / row.Seconds
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// policySpecs returns the scan and hot file lists for the sweep. Scan files
// span [FileHi, 1.25*FileHi] — large enough that every scan, plus one hot
// sweep, exceeds the mid-range capacities, so a recency policy has evicted
// each hot block before its re-read on every single pass. Hot files are 8
// blocks each, so the whole hot set — data plus headers and probe
// candidates — stays well under those same capacities.
func policySpecs(cfg Config) (scan, hot []workload.FileSpec) {
	const scanFiles, hotFiles = 12, 16
	scan = make([]workload.FileSpec, scanFiles)
	for i := range scan {
		size := cfg.FileHi + int64(i)*(cfg.FileHi/4)/int64(scanFiles)
		scan[i] = workload.FileSpec{Name: fmt.Sprintf("scan%04d", i), Size: size}
	}
	hot = make([]workload.FileSpec, hotFiles)
	for i := range hot {
		hot[i] = workload.FileSpec{Name: fmt.Sprintf("hot%04d", i), Size: 8 * int64(cfg.BlockSize)}
	}
	return scan, hot
}

func policyPoint(cfg Config, policy string, capacity, rounds int) (PolicyRow, error) {
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return PolicyRow{}, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	fs, err := stegfs.Format(disk, p, stegfs.WithCache(capacity), stegfs.WithCachePolicy(policy))
	if err != nil {
		return PolicyRow{}, err
	}
	view := fs.NewHiddenView("policy-ablate")

	scan, hot := policySpecs(cfg)
	payload := make(map[string][]byte, len(scan)+len(hot))
	for _, spec := range append(append([]workload.FileSpec(nil), scan...), hot...) {
		payload[spec.Name] = workload.Payload(spec, cfg.Seed)
		if err := view.Create(spec.Name, payload[spec.Name]); err != nil {
			return PolicyRow{}, fmt.Errorf("populate %s: %w", spec.Name, err)
		}
	}

	oneRound := func(r int) error {
		for _, sp := range scan {
			got, err := view.Read(sp.Name)
			if err != nil {
				return fmt.Errorf("round %d read %s: %w", r, sp.Name, err)
			}
			if !bytes.Equal(got, payload[sp.Name]) {
				return fmt.Errorf("round %d: %s corrupted through cache", r, sp.Name)
			}
			for _, hp := range hot {
				got, err := view.Read(hp.Name)
				if err != nil {
					return fmt.Errorf("round %d read %s: %w", r, hp.Name, err)
				}
				if !bytes.Equal(got, payload[hp.Name]) {
					return fmt.Errorf("round %d: %s corrupted through cache", r, hp.Name)
				}
			}
		}
		return nil
	}

	// Warm-up round outside the window, then measure from a flushed image.
	if err := oneRound(0); err != nil {
		return PolicyRow{}, err
	}
	if err := view.Sync(); err != nil {
		return PolicyRow{}, err
	}
	disk.ResetClock()
	preStats, _ := fs.CacheStats()

	for r := 1; r <= rounds; r++ {
		if err := oneRound(r); err != nil {
			return PolicyRow{}, err
		}
	}
	if err := fs.Sync(); err != nil {
		return PolicyRow{}, err
	}

	row := PolicyRow{Policy: policy, CacheBlocks: capacity, Seconds: seconds(disk.Elapsed())}
	if stats, ok := fs.CacheStats(); ok {
		row.Stats = stats.Sub(preStats)
		row.HitRate = row.Stats.HitRate()
	}
	return row, nil
}
