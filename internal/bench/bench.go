// Package bench is the experiment harness: one function per table or figure
// of the paper's evaluation (Section 5), each returning the same rows or
// series the paper reports. cmd/stegbench prints them; bench_test.go wraps
// them as Go benchmarks.
//
// Absolute numbers are simulated-disk seconds (see internal/vdisk); what the
// reproduction preserves is the shape of each figure — which scheme wins, by
// roughly what factor, and where the curves cross.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"stegfs/internal/blockcache"
	"stegfs/internal/fsapi"
	"stegfs/internal/nativefs"
	"stegfs/internal/stegcover"
	"stegfs/internal/stegfs"
	"stegfs/internal/stegrand"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// SchemeNames lists the five systems of Table 4, in the paper's order.
var SchemeNames = []string{"CleanDisk", "FragDisk", "StegCover", "StegRand", "StegFS"}

// Config parameterizes an experiment run. PaperConfig reproduces the
// workload of Table 3; SmallConfig shrinks everything proportionally so the
// full suite runs in seconds under `go test`.
type Config struct {
	VolumeBytes int64 // capacity of the disk volume (Table 3: 1 GB)
	BlockSize   int   // size of each disk block (Table 3: 1 KB)
	NumFiles    int   // number of files in the file system (Table 3: 100)
	FileLo      int64 // file sizes drawn uniformly from (FileLo, FileHi]
	FileHi      int64 // (Table 3: (1, 2] MB)
	OpsPerUser  int   // file operations each user performs per data point
	Seed        int64
	Geometry    vdisk.Geometry
	CacheBlocks int    // block-cache capacity between FS and disk (0 = uncached)
	CachePolicy string // cache replacement policy: "lru" (default), "arc", "2q"

	CoverBytes  int64 // StegCover cover size (>= FileHi; paper: 2 MB)
	Replication int   // StegRand replication (paper: 4)
	Steg        stegfs.Params
}

// PaperConfig returns the evaluation defaults of Tables 1-3.
func PaperConfig() Config {
	p := stegfs.DefaultParams()
	p.FillVolume = false       // benches reset the clock after setup anyway
	p.DeterministicKeys = true // block placement must replay exactly
	return Config{
		VolumeBytes: 1 << 30,
		BlockSize:   1 << 10,
		NumFiles:    100,
		FileLo:      1 << 20,
		FileHi:      2 << 20,
		OpsPerUser:  4,
		Seed:        1,
		Geometry:    vdisk.DefaultGeometry(),
		CoverBytes:  2 << 20,
		Replication: 4,
		Steg:        p,
	}
}

// SmallConfig returns a 1/16-scale configuration with the same shape
// (64 MB volume, (64,128] KB files) for fast tests.
func SmallConfig() Config {
	cfg := PaperConfig()
	cfg.VolumeBytes = 64 << 20
	cfg.FileLo = 64 << 10
	cfg.FileHi = 128 << 10
	cfg.NumFiles = 100
	cfg.CoverBytes = 128 << 10
	cfg.OpsPerUser = 2
	cfg.Steg.DummyAvgSize = 64 << 10
	return cfg
}

// NumBlocks returns the volume size in blocks.
func (c Config) NumBlocks() int64 { return c.VolumeBytes / int64(c.BlockSize) }

// Point is one (x, y) sample of a figure.
type Point struct {
	X float64
	Y float64
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Instance bundles a formatted scheme with its simulated disk.
type Instance struct {
	Scheme string
	Disk   *vdisk.Disk
	FS     fsapi.CursorFS
	store  *vdisk.MemStore
	// Cache is the write-through block cache between the FS and the disk
	// when Config.CacheBlocks > 0, nil otherwise.
	Cache *blockcache.Cache
	// Steg is non-nil for the StegFS instance (exposes volume internals).
	Steg *stegfs.FS
	// View is the hidden-file view driving StegFS benchmarks.
	View *stegfs.HiddenView
}

// BuildInstance formats a fresh volume for the named scheme and populates it
// with the given files, then zeroes the simulated clock so measurements see
// only the workload.
func BuildInstance(scheme string, cfg Config, specs []workload.FileSpec) (*Instance, error) {
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	inst := &Instance{Scheme: scheme, Disk: disk, store: store}
	// Experiments read disk.Elapsed() at arbitrary points (inside the
	// workload runner), so the device-level cache here is WRITE-THROUGH:
	// every write is charged inside the measurement window and no data is
	// ever stranded dirty. The write-back mode with explicit flush barriers
	// is exercised by the cache ablation (CacheSweep), which owns its
	// measurement window end to end.
	var dev vdisk.Device = disk
	if cfg.CacheBlocks > 0 {
		cache, err := blockcache.NewWithOptions(disk, blockcache.Options{
			Capacity:     cfg.CacheBlocks,
			Policy:       cfg.CachePolicy,
			WriteThrough: true,
		})
		if err != nil {
			return nil, err
		}
		inst.Cache = cache
		dev = cache
	}
	switch scheme {
	case "CleanDisk", "FragDisk":
		fs, err := nativefs.Format(dev, scheme == "CleanDisk", maxFilesFor(cfg), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		inst.FS = fs
	case "StegCover":
		fs, err := stegcover.Format(dev, stegcover.Config{
			NumCovers:  16,
			CoverBytes: cfg.CoverBytes,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("StegCover: %w", err)
		}
		inst.FS = fs
	case "StegRand":
		fs, err := stegrand.Format(dev, stegrand.Config{Replication: cfg.Replication, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("StegRand: %w", err)
		}
		inst.FS = fs
	case "StegFS":
		p := cfg.Steg
		p.Seed = cfg.Seed
		fs, err := stegfs.Format(dev, p)
		if err != nil {
			return nil, fmt.Errorf("StegFS: %w", err)
		}
		inst.Steg = fs
		inst.View = fs.NewHiddenView("bench")
		inst.FS = inst.View
	default:
		return nil, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	if specs != nil {
		if err := workload.Populate(inst.FS, specs, cfg.Seed); err != nil {
			return nil, fmt.Errorf("%s: populate: %w", scheme, err)
		}
	}
	disk.ResetClock()
	return inst, nil
}

// maxFilesFor sizes the central directory comfortably above the workload.
func maxFilesFor(cfg Config) int {
	n := cfg.NumFiles * 2
	if n < 64 {
		n = 64
	}
	return n
}

// Specs draws the workload's file list for a config.
func (c Config) Specs() []workload.FileSpec {
	rng := rand.New(rand.NewSource(c.Seed))
	return workload.UniformSpecs(rng, c.NumFiles, c.FileLo, c.FileHi, "f")
}

// seconds converts a simulated duration to float seconds for plotting.
func seconds(d time.Duration) float64 { return d.Seconds() }
