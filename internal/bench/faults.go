package bench

import (
	"fmt"
	"math/rand"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// FaultRow is one row of the fault-injection ablation: a fixed hidden-file
// workload run against a device injecting transient faults at Rate, with or
// without the retry layer. Goodput is the fraction of FS operations that
// completed; with retries enabled it should stay at 1.0 well past realistic
// fault rates, with the cost visible only in the retry counters.
type FaultRow struct {
	Rate       float64 // per-block-access transient fault probability
	MaxRetries int     // retry budget (0 = no retry layer mounted)
	Ops        int     // FS-level operations attempted
	OpErrors   int     // operations that returned an error
	Goodput    float64 // (Ops-OpErrors)/Ops
	Retries    int64   // device accesses reissued by the retry layer
	GiveUps    int64   // accesses abandoned after exhausting the budget
	Faults     int64   // faults the device actually injected
	ReadOnly   bool    // did the mount degrade before the workload finished
	SimSeconds float64 // simulated disk service time
}

// FaultSweep runs the robustness ablation: the same create/read/rewrite
// workload at each transient-fault rate. Faults are armed only after format
// so every run starts from an identical volume.
func FaultSweep(cfg Config, rates []float64, maxRetries int) ([]FaultRow, error) {
	if rates == nil {
		rates = []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05}
	}
	var out []FaultRow
	for _, rate := range rates {
		row, err := faultPoint(cfg, rate, maxRetries)
		if err != nil {
			return nil, fmt.Errorf("fault rate %v: %w", rate, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func faultPoint(cfg Config, rate float64, maxRetries int) (FaultRow, error) {
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return FaultRow{}, err
	}
	fstore := vdisk.NewFaultStore(store, cfg.Seed+int64(rate*1e6))
	disk := vdisk.NewDisk(fstore, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	var opts []stegfs.Option
	if maxRetries > 0 {
		opts = append(opts, stegfs.WithRetry(maxRetries))
	}
	fs, err := stegfs.Format(disk, p, opts...)
	if err != nil {
		return FaultRow{}, err
	}
	// Each injected incident clears after two attempts: the workload
	// measures transient noise, not permanently dead sectors.
	fstore.SetTransientRates(rate, rate, 2)

	view := fs.NewHiddenView("faults")
	rng := rand.New(rand.NewSource(cfg.Seed))
	row := FaultRow{Rate: rate, MaxRetries: maxRetries}
	op := func(err error) {
		row.Ops++
		if err != nil {
			row.OpErrors++
		}
	}
	nFiles := cfg.NumFiles / 2
	if nFiles < 4 {
		nFiles = 4
	}
	for i := 0; i < nFiles; i++ {
		size := cfg.FileLo + 1 + rng.Int63n(cfg.FileHi-cfg.FileLo)
		spec := workload.FileSpec{Name: fmt.Sprintf("f%04d", i), Size: size}
		op(view.Create(spec.Name, workload.Payload(spec, cfg.Seed)))
		_, err := view.Read(spec.Name)
		op(err)
		spec.Size = cfg.FileLo + 1 + rng.Int63n(cfg.FileHi-cfg.FileLo)
		op(view.Write(spec.Name, workload.Payload(spec, cfg.Seed+1)))
		_, err = view.Read(spec.Name)
		op(err)
		if i%8 == 7 {
			op(fs.Sync())
		}
	}
	op(fs.Sync())

	fstore.Disarm()
	h := fs.Health()
	fst := fstore.Stats()
	row.Goodput = float64(row.Ops-row.OpErrors) / float64(row.Ops)
	row.Retries = h.Retries
	row.GiveUps = h.GiveUps
	row.Faults = fst.ReadFaults + fst.WriteFaults
	row.ReadOnly = h.ReadOnly
	row.SimSeconds = disk.Stats().Busy.Seconds()
	return row, nil
}
