package bench

import "testing"

// TestCachedWriteConcurrencySweepScalesAndKeepsDiskCost asserts the
// acceptance shape of ablation A7 at a reduced size: with the asynchronous
// flush pipeline, the cached mixed read/mutate workload must scale with
// goroutines, the simulated-disk cost of the window must stay flat, and the
// deferred writes must reach the device as batched flush submissions rather
// than per-block writes.
func TestCachedWriteConcurrencySweepScalesAndKeepsDiskCost(t *testing.T) {
	cfg := SmallConfig()
	rows, report, err := CachedWriteConcurrencySweep(cfg, []int{1, 4}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 || r.WallSeconds <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.DiskSeconds <= 0 {
			t.Fatalf("window consumed no simulated disk time: %+v", r)
		}
		if r.WriteBacks == 0 || r.FlushBatches == 0 {
			t.Fatalf("window recorded no batched write-backs: %+v", r)
		}
		if r.FlushBatches >= r.WriteBacks {
			t.Fatalf("flushes not batched: %d submissions for %d blocks", r.FlushBatches, r.WriteBacks)
		}
	}
	if rows[1].Speedup < 1.5 {
		t.Errorf("4 goroutines speedup %.2fx, want >= 1.5x (cached writers must not stall behind the flush pipeline)", rows[1].Speedup)
	}
	ratio := rows[1].DiskSeconds / rows[0].DiskSeconds
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("simulated-disk cost moved %.2fx across levels; concurrency must not re-price the device", ratio)
	}
	if report.Groups == 0 || report.Allocs == 0 {
		t.Fatalf("empty allocator report: %+v", report)
	}
}
