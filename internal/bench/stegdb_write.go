package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stegfs/internal/stegdb"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

// StegDBWriteRow is one level of the stegdb write-scalability ablation (A9):
// a write-heavy mixed Put/Delete/Get/Range op set fanned across Goroutines
// workers on ONE shared partitioned hidden table.
type StegDBWriteRow struct {
	Goroutines  int
	Partitions  int
	WallSeconds float64 // wall-clock time for the whole op set
	OpsPerSec   float64 // totalOps / WallSeconds
	Speedup     float64 // OpsPerSec relative to the first (1-goroutine) row
	DiskSeconds float64 // simulated-disk time consumed inside the window
	HitRate     float64 // block-cache hit rate inside the window
}

// Shared-table shape for the write sweep. The cold key space is sized so
// that cold Puts and Gets touch never-warmed leaf and bucket pages — the
// window's fixed, emulated-latency miss set — while the hot and rw keys
// stay resident across the whole level.
const (
	sdwPartitions  = 16   // partitioned table width; one hidden file each
	sdwCacheBlocks = 8192 // block cache: comfortably above the files' blocks
	sdwPageCache   = 1024 // pager page cache frames, per partition
	sdwBuckets     = 256  // hash buckets per partition
	sdwHotKeys     = 64   // "a-ro-*": read-only, warmed, hash-path hits
	sdwRWKeys      = 32   // "b-rw-*": in-cache replace targets + Range window
	sdwColdKeys    = 4096 // "c-*": rewrite/read targets on never-warmed pages
)

// StegDBWriteSweep runs ablation A9: goroutines x {1,2,4,8,16} of a
// write-heavy mixed workload over ONE shared PARTITIONED hidden table on a
// cached, latency-emulated volume. Per 8 ops: 3 cold Puts (each rewrites a
// row on a never-warmed leaf, paying device latency for the leaf and hash
// bucket page reads), 1 in-cache replace Put on the rw window, 1 transient
// Put+Delete pair, 1 hot Get (hash path, cache hit), 1 cold Get, and 1
// cross-partition snapshot Range over the rw window (verifying a consistent
// merged view while writers run).
//
// This is the regime the B-link tree + partitioned layout exists for: with
// one exclusive tree lock — or one hidden file, whose stegfs object lock
// serializes every WriteAt — concurrent writers queue behind each other's
// device-latency page misses. With per-page tree latches and the table
// sharded across sdwPartitions hidden files, writers touching different
// keys proceed in parallel and their cold misses overlap.
//
// The op set is deterministic and identical at every level — only the
// partition across goroutines changes — and each level starts from the same
// reset-and-rewarmed cache state, so the simulated-disk cost must stay flat
// (±5%) while wall-clock time shrinks: scaling has to come from stegdb's
// concurrency, not from charging the disk differently. The group-commit
// Sync runs between levels, unmeasured, like A8.
func StegDBWriteSweep(cfg Config, levels []int, totalOps int, emuScale float64) ([]StegDBWriteRow, error) {
	if levels == nil {
		levels = []int{1, 2, 4, 8, 16}
	}
	if totalOps <= 0 {
		totalOps = 256
	}
	if emuScale <= 0 {
		emuScale = 0.5
	}
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	policy := cfg.CachePolicy
	if policy == "" {
		policy = "2q"
	}
	fs, err := stegfs.Format(disk, p, stegfs.WithCache(sdwCacheBlocks), stegfs.WithCachePolicy(policy))
	if err != nil {
		return nil, err
	}
	view := fs.NewHiddenView("dbw")
	pt, err := stegdb.CreatePartitionedTable(view, "a9.db", sdwPartitions, true, sdwBuckets)
	if err != nil {
		return nil, err
	}
	pt.SetPageCacheSize(sdwPageCache)

	// Populate. Values are fixed-width so replaces never change page layout,
	// and every value embeds its key so torn rows are detectable.
	hotKey := func(i int) string { return fmt.Sprintf("a-ro-%04d", i%sdwHotKeys) }
	rwKey := func(i int) string { return fmt.Sprintf("b-rw-%04d", i%sdwRWKeys) }
	coldKey := func(c int) string { return fmt.Sprintf("c-%05d", c%sdwColdKeys) }
	for i := 0; i < sdwHotKeys; i++ {
		k := hotKey(i)
		if err := pt.Put([]byte(k), []byte(k+"=hotrow")); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sdwRWKeys; i++ {
		k := rwKey(i)
		if err := pt.Put([]byte(k), []byte(fmt.Sprintf("%s:%06d", k, 0))); err != nil {
			return nil, err
		}
	}
	for c := 0; c < sdwColdKeys; c++ {
		k := coldKey(c)
		if err := pt.Put([]byte(k), []byte(fmt.Sprintf("%s#%06d", k, 0))); err != nil {
			return nil, err
		}
	}
	if err := pt.Sync(); err != nil {
		return nil, err
	}

	// One op of the deterministic mix; the index fixes the op, the level
	// only decides which goroutine runs it.
	doOp := func(i int) error {
		stripe := i / 8
		switch i % 8 {
		case 0, 2, 4: // cold Put: rewrite a row on a never-warmed page
			k := coldKey(stripe*3 + (i%8)/2)
			if err := pt.Put([]byte(k), []byte(fmt.Sprintf("%s#%06d", k, i))); err != nil {
				return fmt.Errorf("op %d cold put: %w", i, err)
			}
		case 1: // replace Put on the rw window (tree + hash, in-cache)
			k := rwKey(stripe)
			if err := pt.Put([]byte(k), []byte(fmt.Sprintf("%s:%06d", k, i))); err != nil {
				return fmt.Errorf("op %d rw put: %w", i, err)
			}
		case 3: // transient row: Put then Delete through both structures
			k := []byte(fmt.Sprintf("t-%06d", i))
			if err := pt.Put(k, []byte("transient-row!")); err != nil {
				return fmt.Errorf("op %d tmp put: %w", i, err)
			}
			found, err := pt.Delete(k)
			if err != nil || !found {
				return fmt.Errorf("op %d tmp delete = %v %v", i, found, err)
			}
		case 5: // hot Get through the hash path (cache hit)
			k := hotKey(i)
			v, ok, err := pt.Get([]byte(k))
			if err != nil || !ok || string(v) != k+"=hotrow" {
				return fmt.Errorf("op %d hot get %s = %q %v %v", i, k, v, ok, err)
			}
		case 6: // cross-partition snapshot Range over the rw window
			var n int
			err := pt.Range([]byte("b-"), []byte("b-~"), func(k, v []byte) bool {
				ks, vs := string(k), string(v)
				if !strings.HasPrefix(vs, ks+":") || len(vs) != len(ks)+1+6 {
					n = -1 << 20 // torn row; force the count check to fail
					return false
				}
				n++
				return true
			})
			if err != nil {
				return fmt.Errorf("op %d range: %w", i, err)
			}
			if n != sdwRWKeys {
				return fmt.Errorf("op %d range saw %d rw rows, want %d", i, n, sdwRWKeys)
			}
		default: // 7: cold Get on a never-warmed page
			k := coldKey(sdwColdKeys - 1 - stripe)
			v, ok, err := pt.Get([]byte(k))
			if err != nil || !ok || !strings.HasPrefix(string(v), k+"#") {
				return fmt.Errorf("op %d cold get %s = %q %v %v", i, k, v, ok, err)
			}
		}
		return nil
	}

	// warm re-establishes the canonical caches: the hot and rw keys (their
	// bucket pages, leaves, and the interior descent paths). The cold key
	// space is deliberately left out — it is the window's fixed miss set.
	warm := func() error {
		for i := 0; i < sdwHotKeys; i++ {
			if _, _, err := pt.Get([]byte(hotKey(i))); err != nil {
				return err
			}
		}
		for i := 0; i < sdwRWKeys; i++ {
			if _, _, err := pt.Get([]byte(rwKey(i))); err != nil {
				return err
			}
		}
		return nil
	}

	// Settle pass: run the whole op set once (unmeasured, no emulation) so
	// one-time page splits, allocations and file growth happen before any
	// level is timed.
	for i := 0; i < totalOps; i++ {
		if err := doOp(i); err != nil {
			return nil, fmt.Errorf("settle: %w", err)
		}
	}
	if err := pt.Sync(); err != nil {
		return nil, err
	}

	var rows []StegDBWriteRow
	for _, g := range levels {
		if g <= 0 {
			return nil, fmt.Errorf("bench: invalid concurrency level %d", g)
		}
		// Same cold start every level: drop every partition's page cache,
		// drop the block cache, re-warm the hot structures with emulation
		// off.
		if err := pt.InvalidatePageCache(); err != nil {
			return nil, err
		}
		if err := fs.Cache().Invalidate(); err != nil {
			return nil, err
		}
		if err := warm(); err != nil {
			return nil, fmt.Errorf("g=%d warm-up: %w", g, err)
		}
		disk.EmulateLatency(emuScale)
		preDisk := disk.Elapsed()
		preStats, _ := fs.CacheStats()

		errs := make(chan error, g)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			// Contiguous chunks: a strided split would alias the op mix's
			// period-8 structure and hand every cold op to one goroutine.
			lo, hi := w*totalOps/g, (w+1)*totalOps/g
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := doOp(i); err != nil {
						errs <- err
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		wall := time.Since(start)
		disk.EmulateLatency(0)
		close(errs)
		for err := range errs {
			return nil, fmt.Errorf("g=%d: %w", g, err)
		}
		// Unmeasured group-commit barrier: each level's dirty pages reach
		// the device before the next level resets the caches.
		if err := pt.Sync(); err != nil {
			return nil, fmt.Errorf("g=%d sync: %w", g, err)
		}

		row := StegDBWriteRow{
			Goroutines:  g,
			Partitions:  sdwPartitions,
			WallSeconds: wall.Seconds(),
			DiskSeconds: (disk.Elapsed() - preDisk).Seconds(),
		}
		if wall > 0 {
			row.OpsPerSec = float64(totalOps) / wall.Seconds()
		}
		if stats, ok := fs.CacheStats(); ok {
			row.HitRate = stats.Sub(preStats).HitRate()
		}
		rows = append(rows, row)
	}
	if len(rows) > 0 && rows[0].OpsPerSec > 0 {
		for i := range rows {
			rows[i].Speedup = rows[i].OpsPerSec / rows[0].OpsPerSec
		}
	}

	// Post-flight: the table must come out of the sweep fully consistent.
	wantRows := int64(sdwHotKeys + sdwRWKeys + sdwColdKeys)
	gotRows, err := pt.Rows()
	if err != nil {
		return nil, err
	}
	if gotRows != wantRows {
		return nil, fmt.Errorf("bench: table ended with %d rows, want %d", gotRows, wantRows)
	}
	if err := pt.Check(); err != nil {
		return nil, fmt.Errorf("bench: post-sweep check: %w", err)
	}
	// Keys must still merge-scan in order across all partitions (snapshot
	// reads share this path).
	var keys []string
	if err := pt.Scan(func(k, v []byte) bool { keys = append(keys, string(k)); return true }); err != nil {
		return nil, err
	}
	if !sort.StringsAreSorted(keys) {
		return nil, fmt.Errorf("bench: post-sweep scan out of order")
	}
	if len(keys) != int(wantRows) {
		return nil, fmt.Errorf("bench: post-sweep scan saw %d rows, want %d", len(keys), wantRows)
	}
	return rows, nil
}
