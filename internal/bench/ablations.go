package bench

import (
	"errors"
	"fmt"
	"math/rand"

	"stegfs/internal/adversary"
	"stegfs/internal/fsapi"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// AbandonedRow is one row of the abandoned-block ablation (A1): more
// abandoned blocks buy more cover (higher attacker guess-work) at the cost
// of utilization.
type AbandonedRow struct {
	PctAbandoned float64
	Utilization  float64 // achievable space utilization
	Candidates   int     // used-unlisted blocks the attacker must sift
	HiddenBlocks int     // blocks actually holding user hidden data
	GuessWork    float64 // expected probes per real hidden block
}

// AbandonedSweep runs ablation A1: sweep the abandoned-block percentage,
// loading a fixed batch of hidden files, and report both the space cost and
// the brute-force examination resistance.
func AbandonedSweep(cfg Config, pcts []float64, filesToHide int) ([]AbandonedRow, error) {
	if pcts == nil {
		pcts = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}
	}
	var out []AbandonedRow
	for _, pct := range pcts {
		row, err := abandonedPoint(cfg, pct, filesToHide)
		if err != nil {
			return nil, fmt.Errorf("abandoned=%v: %w", pct, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func abandonedPoint(cfg Config, pct float64, filesToHide int) (AbandonedRow, error) {
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return AbandonedRow{}, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	p.PctAbandoned = pct
	fs, err := stegfs.Format(disk, p)
	if err != nil {
		return AbandonedRow{}, err
	}
	view := fs.NewHiddenView("ablate")
	rng := rand.New(rand.NewSource(cfg.Seed))

	var stored int64
	names := make([]string, 0, filesToHide)
	truth := make(map[int64]bool)
	for i := 0; ; i++ {
		size := cfg.FileLo + 1 + rng.Int63n(cfg.FileHi-cfg.FileLo)
		spec := workload.FileSpec{Name: fmt.Sprintf("a%05d", i), Size: size}
		if err := view.Create(spec.Name, workload.Payload(spec, cfg.Seed)); err != nil {
			if errors.Is(err, fsapi.ErrNoSpace) {
				break
			}
			return AbandonedRow{}, err
		}
		stored += size
		if len(names) < filesToHide {
			names = append(names, spec.Name)
		}
		if filesToHide > 0 && i+1 >= filesToHide {
			break
		}
	}
	for _, n := range names {
		data, _, err := view.BlocksOf(n)
		if err != nil {
			return AbandonedRow{}, err
		}
		for _, b := range data {
			truth[b] = true
		}
	}
	plainRefs := map[int64]bool{} // no plain files in this ablation
	cands := adversary.UsedUnlisted(fs.Bitmap(), plainRefs, fs.DataStart())
	return AbandonedRow{
		PctAbandoned: pct,
		Utilization:  float64(stored) / float64(cfg.VolumeBytes),
		Candidates:   len(cands),
		HiddenBlocks: len(truth),
		GuessWork:    adversary.GuessWork(len(cands), len(truth)),
	}, nil
}

// FreePoolRow is one row of the free-pool ablation (A2): larger pools blur
// the snapshot attack (lower precision) and change write cost.
type FreePoolRow struct {
	FreeMax         int
	AttackPrecision float64 // snapshot-delta attack precision
	CreateSeconds   float64 // simulated time to create the probe file
}

// FreePoolSweep runs ablation A2: sweep FreeMax and measure how well the
// internal free pools hide which newly allocated blocks hold data.
func FreePoolSweep(cfg Config, freeMaxes []int) ([]FreePoolRow, error) {
	if freeMaxes == nil {
		freeMaxes = []int{0, 2, 4, 10, 20, 28}
	}
	var out []FreePoolRow
	for _, fm := range freeMaxes {
		store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		disk := vdisk.NewDisk(store, cfg.Geometry)
		p := cfg.Steg
		p.Seed = cfg.Seed
		p.FreeMax = fm
		fs, err := stegfs.Format(disk, p)
		if err != nil {
			return nil, fmt.Errorf("FreeMax=%d: %w", fm, err)
		}
		view := fs.NewHiddenView("ablate")

		before := fs.Bitmap()
		disk.ResetClock()
		spec := workload.FileSpec{Name: "probe", Size: (cfg.FileLo + cfg.FileHi) / 2}
		if err := view.Create(spec.Name, workload.Payload(spec, cfg.Seed)); err != nil {
			return nil, fmt.Errorf("FreeMax=%d: %w", fm, err)
		}
		elapsed := disk.Elapsed()
		after := fs.Bitmap()
		data, _, err := view.BlocksOf(spec.Name)
		if err != nil {
			return nil, err
		}
		truth := make(map[int64]bool, len(data))
		for _, b := range data {
			truth[b] = true
		}
		res := adversary.DeltaAttack(before, after, nil, truth)
		out = append(out, FreePoolRow{
			FreeMax:         fm,
			AttackPrecision: res.Precision,
			CreateSeconds:   elapsed.Seconds(),
		})
	}
	return out, nil
}

// DummyRow is one row of the dummy-file ablation (A3): with more dummy
// churn between snapshots, fewer of the attacker's candidates are real.
type DummyRow struct {
	NDummy          int
	AttackPrecision float64
	Candidates      int
}

// DummySweep runs ablation A3: the intruder snapshots the bitmap, the victim
// hides one file while the system performs a dummy-maintenance tick, and the
// intruder diffs. More dummies mean more churn attributed to nothing.
func DummySweep(cfg Config, counts []int) ([]DummyRow, error) {
	if counts == nil {
		counts = []int{0, 2, 4, 10, 16, 32}
	}
	var out []DummyRow
	for _, nd := range counts {
		store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		disk := vdisk.NewDisk(store, cfg.Geometry)
		p := cfg.Steg
		p.Seed = cfg.Seed
		p.NDummy = nd
		fs, err := stegfs.Format(disk, p)
		if err != nil {
			return nil, fmt.Errorf("NDummy=%d: %w", nd, err)
		}
		view := fs.NewHiddenView("ablate")

		before := fs.Bitmap()
		spec := workload.FileSpec{Name: "probe", Size: (cfg.FileLo + cfg.FileHi) / 2}
		if err := view.Create(spec.Name, workload.Payload(spec, cfg.Seed)); err != nil {
			return nil, fmt.Errorf("NDummy=%d: %w", nd, err)
		}
		if err := fs.TickDummies(); err != nil {
			return nil, fmt.Errorf("NDummy=%d tick: %w", nd, err)
		}
		after := fs.Bitmap()
		data, _, err := view.BlocksOf(spec.Name)
		if err != nil {
			return nil, err
		}
		truth := make(map[int64]bool, len(data))
		for _, b := range data {
			truth[b] = true
		}
		res := adversary.DeltaAttack(before, after, nil, truth)
		out = append(out, DummyRow{NDummy: nd, AttackPrecision: res.Precision, Candidates: res.Candidates})
	}
	return out, nil
}
