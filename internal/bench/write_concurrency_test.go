package bench

import "testing"

// TestWriteConcurrencySweepScalesAndKeepsDiskCost asserts the acceptance
// shape of ablation A6 at a reduced size: wall-clock throughput of the mixed
// create/rewrite/delete workload must rise with goroutines (the emulated
// device waits of writers to distinct objects overlap instead of
// serializing on one allocation mutex), and the simulated-disk cost of the
// window must stay essentially unchanged — concurrency buys wall time, it
// does not re-price the device.
func TestWriteConcurrencySweepScalesAndKeepsDiskCost(t *testing.T) {
	cfg := SmallConfig()
	rows, report, err := WriteConcurrencySweep(cfg, []int{1, 4}, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if report.Groups == 0 || report.Allocs == 0 {
		t.Fatalf("empty allocator report: %+v", report)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 || r.WallSeconds <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.DiskSeconds <= 0 {
			t.Fatalf("window consumed no simulated disk time: %+v", r)
		}
	}
	if rows[1].Speedup < 1.5 {
		t.Errorf("4 goroutines speedup %.2fx, want >= 1.5x (writers to distinct objects should overlap)", rows[1].Speedup)
	}
	ratio := rows[1].DiskSeconds / rows[0].DiskSeconds
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("simulated-disk cost moved %.2fx across levels; concurrency must not re-price the device", ratio)
	}
}
