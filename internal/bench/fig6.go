package bench

import (
	"fmt"

	"stegfs/internal/stegrand"
)

// Fig6Replications are the replication factors swept in Figure 6.
var Fig6Replications = []int{1, 2, 4, 8, 16, 32, 64}

// Fig6BlockSizes are the block sizes (bytes) swept in Figure 6.
var Fig6BlockSizes = []int{512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// StegRandSpaceCurve reproduces Figure 6: the effective space utilization of
// StegRand as a function of the replication factor, one series per block
// size. Files are loaded one at a time until all copies of any data block
// are overwritten; utilization counts each file once.
func StegRandSpaceCurve(cfg Config, blockSizes []int, replications []int) []Series {
	if blockSizes == nil {
		blockSizes = Fig6BlockSizes
	}
	if replications == nil {
		replications = Fig6Replications
	}
	out := make([]Series, 0, len(blockSizes))
	for _, bs := range blockSizes {
		s := Series{Label: fmt.Sprintf("block size = %gkb", float64(bs)/1024)}
		numBlocks := cfg.VolumeBytes / int64(bs)
		for _, r := range replications {
			// Average a few seeded runs; the loading process has high
			// variance near the loss threshold.
			const runs = 3
			var sum float64
			for k := 0; k < runs; k++ {
				res := stegrand.SimulateLoad(numBlocks, bs, r, cfg.Seed+int64(k),
					stegrand.UniformFileSize(cfg.FileLo, cfg.FileHi))
				sum += res.Utilization
			}
			s.Points = append(s.Points, Point{X: float64(r), Y: sum / runs})
		}
		out = append(out, s)
	}
	return out
}
