package bench

import (
	"bytes"
	"fmt"

	"stegfs/internal/blockcache"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// CacheRow is one row of the cached-vs-uncached ablation (A4): a StegFS
// volume driven by a repeated-read hidden-file workload, mounted through
// block caches of increasing capacity. Capacity 0 is the uncached baseline.
type CacheRow struct {
	CacheBlocks int
	Seconds     float64 // simulated disk time for the whole workload
	Speedup     float64 // baseline seconds / this row's seconds
	HitRate     float64
	Stats       blockcache.Stats
}

// CacheSweep runs ablation A4. The workload hides a batch of files, then
// performs `rounds` passes in which every file is re-read and one file in
// four is rewritten in place, ending with an FS.Sync — so cached rows pay
// their deferred write-backs inside the measurement window. Reported time
// is vdisk.Disk.Elapsed(), the same simulated-disk clock as every other
// experiment.
func CacheSweep(cfg Config, capacities []int, files, rounds int) ([]CacheRow, error) {
	if capacities == nil {
		capacities = []int{0, 64, 256, 1024, 4096, 16384}
	}
	if files <= 0 {
		files = 12
	}
	if rounds <= 0 {
		rounds = 4
	}
	var out []CacheRow
	var baseline float64
	for i, capacity := range capacities {
		if i == 0 && capacity != 0 {
			return nil, fmt.Errorf("bench: cache sweep must start at capacity 0 (the baseline)")
		}
		row, err := cachePoint(cfg, capacity, files, rounds)
		if err != nil {
			return nil, fmt.Errorf("cache=%d: %w", capacity, err)
		}
		if i == 0 {
			baseline = row.Seconds
		}
		if row.Seconds > 0 {
			row.Speedup = baseline / row.Seconds
		}
		out = append(out, row)
	}
	return out, nil
}

func cachePoint(cfg Config, capacity, files, rounds int) (CacheRow, error) {
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return CacheRow{}, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	fs, err := stegfs.Format(disk, p, stegfs.WithCache(capacity), stegfs.WithCachePolicy(cfg.CachePolicy))
	if err != nil {
		return CacheRow{}, err
	}
	view := fs.NewHiddenView("cache-ablate")

	specs := make([]workload.FileSpec, files)
	payloads := make([][]byte, files)
	for i := range specs {
		size := cfg.FileLo + 1 + int64(i)*(cfg.FileHi-cfg.FileLo)/int64(files)
		specs[i] = workload.FileSpec{Name: fmt.Sprintf("c%04d", i), Size: size}
		payloads[i] = workload.Payload(specs[i], cfg.Seed)
		if err := view.Create(specs[i].Name, payloads[i]); err != nil {
			return CacheRow{}, fmt.Errorf("populate %s: %w", specs[i].Name, err)
		}
	}
	// Setup I/O (format + populate) is not part of the measurement; start
	// the clock from a flushed, consistent image and snapshot the cache
	// counters so the reported stats cover only the workload window.
	if err := view.Sync(); err != nil {
		return CacheRow{}, err
	}
	disk.ResetClock()
	preStats, _ := fs.CacheStats()

	for r := 0; r < rounds; r++ {
		for i, spec := range specs {
			got, err := view.Read(spec.Name)
			if err != nil {
				return CacheRow{}, fmt.Errorf("round %d read %s: %w", r, spec.Name, err)
			}
			if !bytes.Equal(got, payloads[i]) {
				return CacheRow{}, fmt.Errorf("round %d: %s corrupted through cache", r, spec.Name)
			}
			if i%4 == 0 {
				// In-place rewrite: same shape, new bytes — dirties the data
				// blocks and the header.
				payloads[i] = workload.Payload(workload.FileSpec{Name: spec.Name, Size: spec.Size}, cfg.Seed+int64(r)+1)
				if err := view.Write(spec.Name, payloads[i]); err != nil {
					return CacheRow{}, fmt.Errorf("round %d write %s: %w", r, spec.Name, err)
				}
			}
		}
	}
	// The barrier is part of the workload: cached runs pay their coalesced
	// write-back here, uncached runs already paid per-write.
	if err := fs.Sync(); err != nil {
		return CacheRow{}, err
	}

	row := CacheRow{CacheBlocks: capacity, Seconds: seconds(disk.Elapsed())}
	if stats, ok := fs.CacheStats(); ok {
		row.Stats = stats.Sub(preStats)
		row.HitRate = row.Stats.HitRate()
	}
	return row, nil
}
