package bench

import "testing"

// TestStegDBConcurrencySweepScalesAndKeepsDiskCost asserts the acceptance
// shape of ablation A8 at a reduced size: mixed point/range throughput over
// one shared hidden table must rise with goroutines (cold bucket-page waits
// overlap under the pager's latches instead of serializing), while the
// simulated-disk cost of the window stays essentially unchanged.
func TestStegDBConcurrencySweepScalesAndKeepsDiskCost(t *testing.T) {
	cfg := SmallConfig()
	rows, err := StegDBConcurrencySweep(cfg, []int{1, 4}, 64, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 || r.WallSeconds <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.DiskSeconds <= 0 {
			t.Fatalf("window consumed no simulated disk time: %+v", r)
		}
	}
	if rows[1].Speedup < 1.5 {
		t.Errorf("4 goroutines speedup %.2fx, want >= 1.5x (emulated waits should overlap)", rows[1].Speedup)
	}
	ratio := rows[1].DiskSeconds / rows[0].DiskSeconds
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("simulated-disk cost moved %.2fx across levels; concurrency must not re-price the device", ratio)
	}
}
