package bench

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"stegfs/internal/alloc"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// CachedWriteConcurrencyRow is one level of the cached parallel-write-path
// ablation (A7): the A6 mutation cycle plus a cold-read stream fanned across
// Goroutines workers on one shared CACHED StegFS instance with the
// asynchronous write-behind pipeline active.
type CachedWriteConcurrencyRow struct {
	Goroutines  int
	WallSeconds float64 // wall-clock time for the whole op set + in-window Sync
	OpsPerSec   float64 // totalOps / WallSeconds
	Speedup     float64 // OpsPerSec relative to the first (1-goroutine) row
	DiskSeconds float64 // simulated-disk time consumed inside the window
	HitRate     float64 // cache hit rate inside the window
	// SyncTailSeconds is the closing FS.Sync barrier alone: the dirty
	// backlog write-behind left for the barrier to drain. The elevator
	// (C-SCAN) flusher keeps this tail short — without the sweep cursor the
	// background runs restart at the lowest dirty block every time and the
	// starved high-block tail lands on the barrier.
	SyncTailSeconds float64

	// Flush-pipeline evidence: deferred writes must reach the device as
	// batched sorted runs, not per-block synchronous writes.
	WriteBacks   int64 // blocks written back inside the window
	FlushBatches int64 // batched flush submissions those blocks rode in
	WriteBehinds int64 // background write-behind runs
	FlushStalls  int64 // writer stalls at the hard dirty cap
}

// AllocReport summarizes the sharded allocator's per-group counters for a
// sweep, so the harness can print allocation skew and lock contention next
// to the scaling numbers.
type AllocReport struct {
	Groups     int
	Allocs     int64
	Frees      int64
	Locks      int64 // counted group-lock acquisitions (alloc, free, bit probes)
	Contended  int64 // of Locks, how many found the group mutex held
	MinAllocs  int64
	MaxAllocs  int64
	MeanAllocs float64
}

// NewAllocReport snapshots an allocator into an AllocReport.
func NewAllocReport(a *alloc.Allocator) AllocReport {
	st := a.Stats()
	tot := st.Totals()
	min, max, mean := st.AllocSkew()
	return AllocReport{
		Groups:     a.Groups(),
		Allocs:     tot.Allocs,
		Frees:      tot.Frees,
		Locks:      tot.Locks,
		Contended:  tot.Contended,
		MinAllocs:  min,
		MaxAllocs:  max,
		MeanAllocs: mean,
	}
}

// Workload shape for the cached write sweep. Ops come in 8-op stripes, each
// pinned to one goroutine: four cold hidden reads (every read file is
// touched exactly once per level, so the window's miss set is identical at
// every concurrency level) interleaved with the A6 four-op mutation cycle on
// the stripe's own write object. Reads model the multi-user cover traffic
// the paper assumes runs at full speed; the mutation cycle is the write path
// under test.
const (
	cwcStripes      = 32 // 8 ops each -> 256 ops per level
	cwcOpsPerStripe = 8
	cwcReadFiles    = cwcStripes * 4 // touched once per level each
	cwcReadBlocks   = 8              // blocks per read file
	cwcWriteBlocks  = 2              // payload blocks per write object

	cwcCacheBlocks  = 4096 // covers the level working set; Invalidate re-colds it
	cwcWriteBehind  = 128  // high-water: background flushing runs inside the window
	cwcFlushWorkers = 4
)

// CachedWriteConcurrencySweep runs ablation A7: goroutines x {1,2,4,8,16}
// over one shared StegFS volume mounted THROUGH the write-back cache with
// write-behind and the background flush pipeline enabled, on a
// latency-emulating disk. This is the regime where the pre-pipeline cache
// collapsed the A6 curve back toward 1x: every dirty write-back went out
// one synchronous WriteBlock at a time while holding the cache mutex, so a
// cached writer — and every concurrent reader hitting the cache — stalled
// behind the device. With the asynchronous pipeline, foreground writes are
// absorbed by the cache, dirty runs stream out in sorted batches on
// background flusher goroutines, and the only foreground device waits left
// are the cold-read misses, which overlap across goroutines exactly like
// the uncached A5/A6 paths.
//
// Each level's window starts from an identical cold-cache, fully-synced
// state (Sync + Invalidate between levels, outside the window) and ENDS
// with FS.Sync inside the window, so the window prices the full write-back
// cost of the level's mutations — wall-clock speedup cannot come from
// deferring device work past the measurement.
func CachedWriteConcurrencySweep(cfg Config, levels []int, emuScale float64) ([]CachedWriteConcurrencyRow, AllocReport, error) {
	if levels == nil {
		levels = []int{1, 2, 4, 8, 16}
	}
	if emuScale <= 0 {
		emuScale = 0.5
	}
	totalOps := cwcStripes * cwcOpsPerStripe
	for _, g := range levels {
		if g <= 0 {
			return nil, AllocReport{}, fmt.Errorf("bench: invalid concurrency level %d", g)
		}
		if totalOps%g != 0 || (totalOps/g)%cwcOpsPerStripe != 0 {
			return nil, AllocReport{}, fmt.Errorf("bench: level %d does not tile %d ops in whole %d-op stripes", g, totalOps, cwcOpsPerStripe)
		}
	}
	store, err := vdisk.NewMemStore(cfg.NumBlocks(), cfg.BlockSize)
	if err != nil {
		return nil, AllocReport{}, err
	}
	disk := vdisk.NewDisk(store, cfg.Geometry)
	p := cfg.Steg
	p.Seed = cfg.Seed
	fs, err := stegfs.Format(disk, p,
		stegfs.WithCache(cwcCacheBlocks),
		stegfs.WithCachePolicy(cfg.CachePolicy),
		stegfs.WithWriteBehind(cwcWriteBehind, cwcFlushWorkers))
	if err != nil {
		return nil, AllocReport{}, err
	}
	defer fs.Close() // stop the background flusher pool when the sweep ends
	view := fs.NewHiddenView("cwc")

	bs := int64(cfg.BlockSize)
	readSpecs := make([]workload.FileSpec, cwcReadFiles)
	for i := range readSpecs {
		readSpecs[i] = workload.FileSpec{Name: fmt.Sprintf("r%03d", i), Size: cwcReadBlocks * bs}
		if err := view.Create(readSpecs[i].Name, workload.Payload(readSpecs[i], cfg.Seed)); err != nil {
			return nil, AllocReport{}, fmt.Errorf("populate %s: %w", readSpecs[i].Name, err)
		}
	}
	writeSpecs := make([]workload.FileSpec, cwcStripes)
	payloads := make([][]byte, cwcStripes)
	alt := make([][]byte, cwcStripes)
	for i := range writeSpecs {
		writeSpecs[i] = workload.FileSpec{Name: fmt.Sprintf("w%03d", i), Size: cwcWriteBlocks * bs}
		payloads[i] = workload.Payload(writeSpecs[i], cfg.Seed)
		alt[i] = workload.Payload(writeSpecs[i], cfg.Seed+7)
		if err := view.Create(writeSpecs[i].Name, payloads[i]); err != nil {
			return nil, AllocReport{}, fmt.Errorf("populate %s: %w", writeSpecs[i].Name, err)
		}
	}

	// One op of the deterministic mix. Stripe s owns write object s and the
	// four read files 4s..4s+3; even positions are cold reads, odd positions
	// walk the A6 cycle in order: in-place rewrite, delete, re-create
	// (fresh uniform allocation), rewrite back to the canonical content.
	doOp := func(i int) error {
		stripe, pos := i/cwcOpsPerStripe, i%cwcOpsPerStripe
		if pos%2 == 0 {
			_, err := view.Read(readSpecs[stripe*4+pos/2].Name)
			return err
		}
		name := writeSpecs[stripe].Name
		switch pos / 2 {
		case 0:
			return view.Write(name, alt[stripe])
		case 1:
			return view.Delete(name)
		case 2:
			return view.Create(name, alt[stripe])
		default:
			return view.Write(name, payloads[stripe])
		}
	}

	cache := fs.Cache()
	var rows []CachedWriteConcurrencyRow
	for _, g := range levels {
		// Reset to an identical cold-cache, clean state between levels —
		// outside the window and without latency emulation.
		if err := fs.Sync(); err != nil {
			return nil, AllocReport{}, err
		}
		if err := cache.Invalidate(); err != nil {
			return nil, AllocReport{}, err
		}

		disk.EmulateLatency(emuScale)
		preDisk := disk.Elapsed()
		preStats := cache.Stats()
		errs := make(chan error, g)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			lo, hi := w*totalOps/g, (w+1)*totalOps/g
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := doOp(i); err != nil {
						errs <- fmt.Errorf("op %d: %w", i, err)
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		// The window ends at the Sync barrier: the level's full write-back
		// cost is inside the measurement. The barrier is timed on its own —
		// its tail is the write-behind debt the background flushers failed
		// to retire inside the window.
		syncStart := time.Now()
		syncErr := fs.Sync()
		syncTail := time.Since(syncStart)
		wall := time.Since(start)
		disk.EmulateLatency(0)
		close(errs)
		for err := range errs {
			return nil, AllocReport{}, fmt.Errorf("g=%d: %w", g, err)
		}
		if syncErr != nil {
			return nil, AllocReport{}, fmt.Errorf("g=%d: sync: %w", g, syncErr)
		}

		d := cache.Stats().Sub(preStats)
		row := CachedWriteConcurrencyRow{
			Goroutines:      g,
			WallSeconds:     wall.Seconds(),
			DiskSeconds:     (disk.Elapsed() - preDisk).Seconds(),
			HitRate:         d.HitRate(),
			SyncTailSeconds: syncTail.Seconds(),
			WriteBacks:      d.WriteBacks,
			FlushBatches:    d.FlushBatches,
			WriteBehinds:    d.WriteBehinds,
			FlushStalls:     d.FlushStalls,
		}
		if wall > 0 {
			row.OpsPerSec = float64(totalOps) / wall.Seconds()
		}
		rows = append(rows, row)

		// Verify outside the measured window.
		for i, s := range writeSpecs {
			got, err := view.Read(s.Name)
			if err != nil {
				return nil, AllocReport{}, fmt.Errorf("g=%d verify %s: %w", g, s.Name, err)
			}
			if !bytes.Equal(got, payloads[i]) {
				return nil, AllocReport{}, fmt.Errorf("g=%d: %s corrupted after cached write window", g, s.Name)
			}
		}
	}
	if len(rows) > 0 && rows[0].OpsPerSec > 0 {
		for i := range rows {
			rows[i].Speedup = rows[i].OpsPerSec / rows[0].OpsPerSec
		}
	}
	return rows, NewAllocReport(fs.Alloc()), nil
}
