package fsapi

import (
	"errors"
	"testing"
)

// fakeCursor counts steps until n.
type fakeCursor struct {
	n, pos int
	failAt int
}

func (c *fakeCursor) Step() (bool, error) {
	if c.failAt > 0 && c.pos == c.failAt {
		return false, errors.New("boom")
	}
	if c.pos >= c.n {
		return true, errors.New("past end")
	}
	c.pos++
	return c.pos == c.n, nil
}

func (c *fakeCursor) Remaining() int { return c.n - c.pos }

func TestDrainCompletes(t *testing.T) {
	c := &fakeCursor{n: 5}
	steps, err := Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
	if c.Remaining() != 0 {
		t.Fatal("cursor not drained")
	}
}

func TestDrainPropagatesError(t *testing.T) {
	c := &fakeCursor{n: 5, failAt: 3}
	steps, err := Drain(c)
	if err == nil {
		t.Fatal("expected error")
	}
	if steps != 3 {
		t.Fatalf("steps before failure = %d, want 3", steps)
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrNotFound, ErrExists, ErrNoSpace, ErrCorrupt, ErrIsDir, ErrNotDir}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("error %v conflated with %v", a, b)
			}
		}
	}
}
