// Package fsapi defines the common file-system interface that the benchmark
// harness drives. All five systems evaluated in the paper — StegFS,
// StegCover, StegRand, CleanDisk and FragDisk — implement it, so every
// experiment runs the same workload code against each scheme.
//
// Besides whole-file operations, the interface exposes block-granular
// cursors. The paper's multi-user experiments (Figures 7 and 8) interleave
// the I/O of concurrent users on a single spindle; cursors let the workload
// mixer round-robin individual block requests across users, which is what
// erodes the native file system's sequential advantage exactly as in the
// paper.
package fsapi

import "errors"

// Sentinel errors shared across implementations.
var (
	// ErrNotFound reports that the named file does not exist (or, for
	// steganographic schemes, cannot be located with the given key — the two
	// cases are deliberately indistinguishable).
	ErrNotFound = errors.New("fsapi: file not found")
	// ErrExists reports a create of a name that is already present.
	ErrExists = errors.New("fsapi: file already exists")
	// ErrNoSpace reports volume exhaustion.
	ErrNoSpace = errors.New("fsapi: no space left on volume")
	// ErrCorrupt reports unrecoverable data loss (StegRand overwrites).
	ErrCorrupt = errors.New("fsapi: file data corrupted")
	// ErrIsDir reports a file operation applied to a directory.
	ErrIsDir = errors.New("fsapi: is a directory")
	// ErrNotDir reports a directory operation applied to a file.
	ErrNotDir = errors.New("fsapi: not a directory")
)

// FileInfo describes a stored file.
type FileInfo struct {
	Name   string // file name as given at creation
	Size   int64  // logical size in bytes
	Blocks int64  // number of data blocks occupied
}

// FileSystem is the whole-file interface every scheme implements.
type FileSystem interface {
	// SchemeName identifies the scheme ("StegFS", "StegCover", ...).
	SchemeName() string
	// Create stores a new file with the given contents.
	Create(name string, data []byte) error
	// Read returns the full contents of the named file.
	Read(name string) ([]byte, error)
	// Write replaces the contents of an existing file.
	Write(name string, data []byte) error
	// Delete removes the named file and frees its space.
	Delete(name string) error
	// Stat describes the named file.
	Stat(name string) (FileInfo, error)
}

// Cursor performs one file operation a block at a time so a scheduler can
// interleave several users' requests. Each Step issues the physical I/O for
// one logical block of the file (which may be several device operations: a
// StegCover step touches every cover file; a StegRand write step updates all
// replicas).
type Cursor interface {
	// Step performs the next logical-block I/O. It returns done=true when
	// the file operation has completed; calling Step again after done is an
	// error.
	Step() (done bool, err error)
	// Remaining returns the number of logical block steps still to perform.
	Remaining() int
}

// CursorFS is implemented by schemes that support interleaved block-level
// access for the concurrency experiments.
type CursorFS interface {
	FileSystem
	// ReadCursor starts a block-by-block read of the named file.
	ReadCursor(name string) (Cursor, error)
	// WriteCursor starts a block-by-block overwrite of the named file with
	// data (same length category as created; schemes may reallocate).
	WriteCursor(name string, data []byte) (Cursor, error)
}

// Drain runs a cursor to completion and returns the number of steps taken.
func Drain(c Cursor) (int, error) {
	steps := 0
	for {
		done, err := c.Step()
		if err != nil {
			return steps, err
		}
		steps++
		if done {
			return steps, nil
		}
	}
}
